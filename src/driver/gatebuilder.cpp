#include "driver/gatebuilder.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace pypim
{

GateBuilder::GateBuilder(OperationSink &sink, const Geometry &geo)
    : sink_(&sink),
      geo_(&geo),
      pool_(geo)
{
    buf_.reserve(flushThreshold);
}

void
GateBuilder::setWarpMask(const Range &warps)
{
    if (warpMask_ && *warpMask_ == warps)
        return;
    warpMask_ = warps;
    emit(enc::crossbarMask(warps));
}

void
GateBuilder::setRowMask(const Range &rows)
{
    if (rowMask_ && *rowMask_ == rows)
        return;
    rowMask_ = rows;
    emit(enc::rowMask(rows));
}

void
GateBuilder::setMasks(const Range &warps, const Range &rows)
{
    setWarpMask(warps);
    setRowMask(rows);
}

void
GateBuilder::flush()
{
    if (buf_.empty())
        return;
    // Submit rather than perform: a pipelined sink overlaps replay of
    // this batch with translation of the next; the buffer is only
    // read during the call, so reusing it immediately is safe.
    sink_->submitBatch(buf_.data(), buf_.size());
    buf_.clear();
}

OperationSink *
GateBuilder::swapSink(OperationSink *s)
{
    flush();
    OperationSink *old = sink_;
    sink_ = s;
    return old;
}

void
GateBuilder::writeWord(uint32_t slot, uint32_t value)
{
    emit(enc::write(slot, value));
}

uint32_t
GateBuilder::readWord(uint32_t warp, uint32_t row, uint32_t slot)
{
    const Range savedWarps = warpMask();
    const Range savedRows = rowMask();
    setMasks(Range::single(warp), Range::single(row));
    flush();
    const uint32_t value = sink_->performRead(enc::read(slot));
    setMasks(savedWarps, savedRows);
    return value;
}

// --- single stateful gates ---------------------------------------------

void
GateBuilder::initCell(uint32_t c, bool v)
{
    emit(enc::logicH(v ? Gate::Init1 : Gate::Init0, 0, 0, c,
                     partOf(c), 0));
}

void
GateBuilder::notInto(uint32_t a, uint32_t out, bool init)
{
    if (init)
        initCell(out, true);
    emit(enc::logicH(Gate::Not, a, a, out, partOf(out), 0));
}

void
GateBuilder::norInto(uint32_t a, uint32_t b, uint32_t out, bool init)
{
    const uint32_t pa = partOf(a);
    const uint32_t pb = partOf(b);
    const uint32_t po = partOf(out);
    const uint32_t lo = std::min(pa, pb);
    const uint32_t hi = std::max(pa, pb);
    if (po > lo && po < hi) {
        // The caller pinned the output strictly between the inputs,
        // which the half-gate span restriction cannot express: route
        // through a legally-placed cell and copy (NOT twice).
        const uint32_t tmp = nor(a, b);
        const uint32_t t2 = not_(tmp);
        notInto(t2, out, init);
        pool_.freeBit(tmp);
        pool_.freeBit(t2);
        return;
    }
    if (init)
        initCell(out, true);
    // inA must be the extreme input so that the deduced section
    // [min(pA, pOut), max(pA, pOut)] contains the inner input.
    uint32_t inA = a, inB = b;
    if (po >= hi) {
        if (pb < pa)
            std::swap(inA, inB);
    } else {  // po <= lo
        if (pb > pa)
            std::swap(inA, inB);
    }
    emit(enc::logicH(Gate::Nor, inA, inB, out, po, 0));
}

uint32_t
GateBuilder::nor(uint32_t a, uint32_t b)
{
    const uint32_t pa = partOf(a);
    const uint32_t pb = partOf(b);
    const uint32_t out =
        pool_.allocBitOutside(std::min(pa, pb), std::max(pa, pb));
    norInto(a, b, out);
    return out;
}

uint32_t
GateBuilder::not_(uint32_t a)
{
    const uint32_t p = partOf(a);
    const uint32_t out = pool_.allocBitOutside(p, p);
    notInto(a, out);
    return out;
}

uint32_t
GateBuilder::or_(uint32_t a, uint32_t b)
{
    const uint32_t t = nor(a, b);
    const uint32_t r = not_(t);
    pool_.freeBit(t);
    return r;
}

uint32_t
GateBuilder::and_(uint32_t a, uint32_t b)
{
    const uint32_t na = not_(a);
    const uint32_t nb = not_(b);
    const uint32_t r = nor(na, nb);
    pool_.freeBit(na);
    pool_.freeBit(nb);
    return r;
}

uint32_t
GateBuilder::xnor_(uint32_t a, uint32_t b)
{
    const uint32_t x1 = nor(a, b);
    const uint32_t x2 = nor(a, x1);
    const uint32_t x3 = nor(b, x1);
    const uint32_t r = nor(x2, x3);
    pool_.freeBit(x1);
    pool_.freeBit(x2);
    pool_.freeBit(x3);
    return r;
}

uint32_t
GateBuilder::xor_(uint32_t a, uint32_t b)
{
    const uint32_t t = xnor_(a, b);
    const uint32_t r = not_(t);
    pool_.freeBit(t);
    return r;
}

uint32_t
GateBuilder::mux(uint32_t s, uint32_t a, uint32_t b)
{
    const uint32_t ns = not_(s);
    const uint32_t r = muxN(s, ns, a, b);
    pool_.freeBit(ns);
    return r;
}

uint32_t
GateBuilder::muxN(uint32_t s, uint32_t ns, uint32_t a, uint32_t b)
{
    const uint32_t t1 = nor(a, ns);
    const uint32_t t2 = nor(b, s);
    const uint32_t r = nor(t1, t2);
    pool_.freeBit(t1);
    pool_.freeBit(t2);
    return r;
}

void
GateBuilder::fullAdder(uint32_t a, uint32_t b, uint32_t c,
                       uint32_t sumOut, uint32_t coutOut)
{
    const uint32_t x1 = nor(a, b);
    const uint32_t x2 = nor(a, x1);
    const uint32_t x3 = nor(b, x1);
    const uint32_t x4 = nor(x2, x3);  // a XNOR b
    pool_.freeBit(x2);
    pool_.freeBit(x3);
    const uint32_t y1 = nor(x4, c);
    const uint32_t y2 = nor(x4, y1);
    const uint32_t y3 = nor(c, y1);
    norInto(y2, y3, sumOut);          // a ^ b ^ c
    norInto(x1, y1, coutOut);         // majority(a, b, c)
    pool_.freeBit(x1);
    pool_.freeBit(x4);
    pool_.freeBit(y1);
    pool_.freeBit(y2);
    pool_.freeBit(y3);
}

void
GateBuilder::copyCell(uint32_t src, uint32_t dst)
{
    const uint32_t t = not_(src);
    notInto(t, dst);
    pool_.freeBit(t);
}

// --- lane operations ----------------------------------------------------

void
GateBuilder::initLane(uint32_t slot, bool v)
{
    runInit(slot, 0, geo_->partitions - 1, v);
}

void
GateBuilder::runInit(uint32_t slot, uint32_t p0, uint32_t p1, bool v)
{
    if (!partitionsEnabled_) {
        for (uint32_t p = p0; p <= p1; ++p)
            initCell(cell(slot, p), v);
        return;
    }
    emit(enc::logicH(v ? Gate::Init1 : Gate::Init0, 0, 0,
                     cell(slot, p0), p1, p0 == p1 ? 0 : 1));
}

void
GateBuilder::runNot(uint32_t srcSlot, uint32_t dstSlot,
                    uint32_t p0, uint32_t p1, bool init)
{
    if (init)
        runInit(dstSlot, p0, p1, true);
    if (!partitionsEnabled_) {
        for (uint32_t p = p0; p <= p1; ++p)
            notInto(cell(srcSlot, p), cell(dstSlot, p), false);
        return;
    }
    emit(enc::logicH(Gate::Not, cell(srcSlot, p0), cell(srcSlot, p0),
                     cell(dstSlot, p0), p1, p0 == p1 ? 0 : 1));
}

void
GateBuilder::runNor(uint32_t aSlot, uint32_t bSlot, uint32_t dstSlot,
                    uint32_t p0, uint32_t p1, bool init)
{
    if (init)
        runInit(dstSlot, p0, p1, true);
    if (!partitionsEnabled_) {
        for (uint32_t p = p0; p <= p1; ++p)
            norInto(cell(aSlot, p), cell(bSlot, p), cell(dstSlot, p),
                    false);
        return;
    }
    emit(enc::logicH(Gate::Nor, cell(aSlot, p0), cell(bSlot, p0),
                     cell(dstSlot, p0), p1, p0 == p1 ? 0 : 1));
}

void
GateBuilder::laneNot(uint32_t srcSlot, uint32_t dstSlot, bool init)
{
    runNot(srcSlot, dstSlot, 0, geo_->partitions - 1, init);
}

void
GateBuilder::laneNor(uint32_t aSlot, uint32_t bSlot, uint32_t dstSlot,
                     bool init)
{
    runNor(aSlot, bSlot, dstSlot, 0, geo_->partitions - 1, init);
}

void
GateBuilder::laneCopy(uint32_t srcSlot, uint32_t dstSlot)
{
    const uint32_t tmp = pool_.allocLane();
    laneNot(srcSlot, tmp);
    laneNot(tmp, dstSlot);
    pool_.freeLane(tmp);
}

void
GateBuilder::broadcastToLane(uint32_t srcCell, uint32_t dstSlot)
{
    // tmp[p] <- NOT(src) for every partition p (N single gates), then
    // dst <- lane NOT of tmp; total ~N+3 micro-ops.
    const uint32_t tmp = pool_.allocLane();
    initLane(tmp, true);
    for (uint32_t p = 0; p < geo_->partitions; ++p)
        notInto(srcCell, cell(tmp, p), false);
    laneNot(tmp, dstSlot);
    pool_.freeLane(tmp);
}

void
GateBuilder::periodic(Gate g, uint32_t inA, uint32_t inB, uint32_t out,
                      uint32_t pEnd, uint32_t pStep)
{
    if (!partitionsEnabled_ && pStep != 0) {
        // Partition-free baseline: issue every repeated gate as its
        // own single-gate micro-op.
        const uint32_t pw = geo_->partitionWidth();
        const uint32_t pOut = out / pw;
        const bool isInit = g == Gate::Init0 || g == Gate::Init1;
        for (uint32_t p = pOut; p <= pEnd; p += pStep) {
            const uint32_t d = (p - pOut) * pw;
            emit(enc::logicH(g, isInit ? 0 : inA + d,
                             isInit ? 0 : inB + d, out + d, p, 0));
        }
        return;
    }
    emit(enc::logicH(g, inA, inB, out, pEnd, pStep));
}

} // namespace pypim
