/**
 * @file
 * Micro-operation emission engine of the host driver.
 *
 * The GateBuilder turns logic-level intent (NOR/NOT gates between
 * cells, lane-wide parallel gates, mask changes) into encoded
 * micro-operations, batched and forwarded to an OperationSink — the
 * macro-to-micro translation core of paper §V-B.
 *
 * Two emission regimes:
 *  - cell gates: one stateful gate per micro-op, between arbitrary
 *    columns. The builder places allocated outputs so the half-gate
 *    span restriction holds, and falls back to a copy when a caller
 *    pins an output strictly between its inputs.
 *  - lane gates: the same intra-partition gate repeated across all
 *    (or a run of) partitions in ONE micro-op using the periodic
 *    half-gate pattern (paper §III-D3) — N gates per row per cycle.
 *
 * The ablation switch setPartitionsEnabled(false) lowers every lane
 * helper to per-cell serial gates, reproducing the partition-free
 * bit-serial baseline of AritPIM for bench_ablation.
 *
 * Every NOR/NOT output is pre-initialised to 1 (stateful logic can
 * only switch 1 -> 0); the *NoInit/init=false variants let routines
 * that bulk-initialise whole lanes skip the per-gate INIT.
 */
#ifndef PYPIM_DRIVER_GATEBUILDER_HPP
#define PYPIM_DRIVER_GATEBUILDER_HPP

#include <optional>
#include <vector>

#include "common/config.hpp"
#include "driver/scratch.hpp"
#include "sim/sink.hpp"
#include "uarch/microop.hpp"
#include "uarch/range.hpp"

namespace pypim
{

/** Batched micro-op emitter with stateful-logic primitives. */
class GateBuilder
{
  public:
    GateBuilder(OperationSink &sink, const Geometry &geo);

    const Geometry &geometry() const { return *geo_; }
    ScratchPool &pool() { return pool_; }

    /** Disable partition parallelism (pure bit-serial baseline). */
    void setPartitionsEnabled(bool on) { partitionsEnabled_ = on; }
    bool partitionsEnabled() const { return partitionsEnabled_; }

    // --- masks and batching ---------------------------------------------

    /** Emit mask ops if the requested masks differ from the current. */
    void setMasks(const Range &warps, const Range &rows);
    void setWarpMask(const Range &warps);
    void setRowMask(const Range &rows);
    const Range &warpMask() const { return warpMask_.value(); }
    const Range &rowMask() const { return rowMask_.value(); }

    /** True iff both cached masks are known (set or assumed since the
     *  last resetMaskState) — the precondition of the bulk-I/O
     *  planners, which replicate this builder's dedup decisions. */
    bool
    masksKnown() const
    {
        return warpMask_.has_value() && rowMask_.has_value();
    }
    /** Cached warp mask, unset if unknown (bulk-I/O planning). */
    const std::optional<Range> &knownWarpMask() const { return warpMask_; }
    /** Cached row mask, unset if unknown (bulk-I/O planning). */
    const std::optional<Range> &knownRowMask() const { return rowMask_; }

    /** Push the batched micro-ops to the sink. */
    void flush();

    /** Swap the output sink (stream recording); returns the old one. */
    OperationSink *swapSink(OperationSink *s);

    /** Forget the cached mask state (forces re-emission). */
    void
    resetMaskState()
    {
        warpMask_.reset();
        rowMask_.reset();
    }

    /** Drop any batched micro-ops without submitting them (checkpoint
     *  restore: pending ops were translated against the timeline the
     *  restore is discarding). */
    void discardBatch() { buf_.clear(); }

    /**
     * Declare the chip's mask state without emitting ops (used after
     * replaying a recorded stream that ends in these masks).
     */
    void
    assumeMasks(const Range &warps, const Range &rows)
    {
        warpMask_ = warps;
        rowMask_ = rows;
    }

    /** Append one encoded micro-op to the batch. */
    void
    emit(Word w)
    {
        buf_.push_back(w);
        if (buf_.size() >= flushThreshold)
            flush();
    }

    /** Write an N-bit constant to @p slot of all masked rows/warps. */
    void writeWord(uint32_t slot, uint32_t value);

    /**
     * Read @p slot of (@p warp, @p row): narrows the masks, flushes,
     * performs the read, and restores the previous masks.
     */
    uint32_t readWord(uint32_t warp, uint32_t row, uint32_t slot);

    // --- cell addressing --------------------------------------------------

    uint32_t partOf(uint32_t cell) const
    {
        return cell / geo_->partitionWidth();
    }
    uint32_t cell(uint32_t slot, uint32_t bit) const
    {
        return geo_->column(slot, bit);
    }

    // --- single stateful gates (one micro-op per gate + optional INIT) ---

    void initCell(uint32_t c, bool v);
    void notInto(uint32_t a, uint32_t out, bool init = true);
    void norInto(uint32_t a, uint32_t b, uint32_t out, bool init = true);

    /** NOR into a freshly-allocated, span-legal cell. */
    uint32_t nor(uint32_t a, uint32_t b);
    uint32_t not_(uint32_t a);
    uint32_t or_(uint32_t a, uint32_t b);    //!< 2 gates
    uint32_t and_(uint32_t a, uint32_t b);   //!< 3 gates
    uint32_t xnor_(uint32_t a, uint32_t b);  //!< 4 gates
    uint32_t xor_(uint32_t a, uint32_t b);   //!< 5 gates
    /** s ? a : b (4 gates). */
    uint32_t mux(uint32_t s, uint32_t a, uint32_t b);
    /** s ? a : b given both s and ~s (3 gates). */
    uint32_t muxN(uint32_t s, uint32_t ns, uint32_t a, uint32_t b);

    /**
     * 9-gate NOR full adder: {sumOut, coutOut} <- a + b + c. Outputs
     * go to caller-chosen cells (INIT included).
     */
    void fullAdder(uint32_t a, uint32_t b, uint32_t c,
                   uint32_t sumOut, uint32_t coutOut);

    /** Copy src into dst (two NOT gates through a temporary). */
    void copyCell(uint32_t src, uint32_t dst);

    // --- lane operations (one cell per partition, same slot) --------------

    /** INIT the whole lane in one periodic micro-op. */
    void initLane(uint32_t slot, bool v);
    /** INIT partitions [p0, p1] of a lane. */
    void runInit(uint32_t slot, uint32_t p0, uint32_t p1, bool v);
    /** dst[p] <- NOT src[p] for p in [p0, p1]. */
    void runNot(uint32_t srcSlot, uint32_t dstSlot,
                uint32_t p0, uint32_t p1, bool init = true);
    /** dst[p] <- NOR(a[p], b[p]) for p in [p0, p1]. */
    void runNor(uint32_t aSlot, uint32_t bSlot, uint32_t dstSlot,
                uint32_t p0, uint32_t p1, bool init = true);
    void laneNot(uint32_t srcSlot, uint32_t dstSlot, bool init = true);
    void laneNor(uint32_t aSlot, uint32_t bSlot, uint32_t dstSlot,
                 bool init = true);
    /** Copy a whole lane (two lane NOTs through a temporary). */
    void laneCopy(uint32_t srcSlot, uint32_t dstSlot);

    /**
     * Replicate one cell into every partition of @p dstSlot
     * (linear-cost partition broadcast: ~N+3 micro-ops).
     */
    void broadcastToLane(uint32_t srcCell, uint32_t dstSlot);

    /**
     * Raw periodic horizontal op for partition-parallel algorithms
     * (Brent-Kung sweeps, partition shifts). No INIT is emitted.
     */
    void periodic(Gate g, uint32_t inA, uint32_t inB, uint32_t out,
                  uint32_t pEnd, uint32_t pStep);

  private:
    static constexpr size_t flushThreshold = 1 << 15;

    OperationSink *sink_;
    const Geometry *geo_;
    ScratchPool pool_;
    std::vector<Word> buf_;
    std::optional<Range> warpMask_;
    std::optional<Range> rowMask_;
    bool partitionsEnabled_ = true;
};

} // namespace pypim

#endif // PYPIM_DRIVER_GATEBUILDER_HPP
