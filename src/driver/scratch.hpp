/**
 * @file
 * Scratch-cell allocator for the host driver.
 *
 * The driver computes with the memory itself: every row offers
 * cols/partitions register "slots" in the strided layout (bit j of
 * slot s lives at column j*(w/N) + s, i.e. in partition j). Slots
 * [0, userRegs) are ISA-visible registers; the rest are driver
 * scratch managed here.
 *
 * Two allocation granularities:
 *  - lanes: a whole slot (one cell per partition). Lane-aligned
 *    operands allow single-micro-op bulk INIT and per-partition
 *    parallel gates.
 *  - bits: individual cells (partition, slot), used for flags and
 *    loose temporaries. Bit allocation can be constrained to a
 *    specific partition or away from a partition interval so that the
 *    half-gate span restriction (uarch/partition.hpp) is honoured.
 *
 * Scratch state never survives a macro-instruction: the driver calls
 * reset() as part of each instruction prologue. Exhaustion raises
 * InternalError — it indicates a driver routine exceeding its budget.
 */
#ifndef PYPIM_DRIVER_SCRATCH_HPP
#define PYPIM_DRIVER_SCRATCH_HPP

#include <cstdint>
#include <vector>

#include "common/config.hpp"

namespace pypim
{

/** Allocator over the scratch slots of a row. */
class ScratchPool
{
  public:
    explicit ScratchPool(const Geometry &geo);

    /** Allocate a whole slot (lane). */
    uint32_t allocLane();
    /** Release a lane previously returned by allocLane. */
    void freeLane(uint32_t slot);

    /** Allocate one cell in partition @p part; returns column address. */
    uint32_t allocBitIn(uint32_t part);

    /**
     * Allocate one cell in any partition NOT strictly inside the open
     * interval (lo, hi), preferring partitions near @p hi then @p lo.
     * Used to place NOR outputs so the gate span stays valid.
     */
    uint32_t allocBitOutside(uint32_t lo, uint32_t hi);

    /** Release a cell previously returned by an allocBit call. */
    void freeBit(uint32_t col);

    /** Release everything (instruction prologue). */
    void reset();

    /** Lanes currently allocated (lanes + bit-backing slots). */
    uint32_t slotsInUse() const { return slotsInUse_; }
    /** Worst slots-in-use seen since construction (budget telemetry). */
    uint32_t highWater() const { return highWater_; }

  private:
    enum class SlotKind : uint8_t { Free, Lane, Bits };

    struct Slot
    {
        SlotKind kind = SlotKind::Free;
        uint64_t usedBits = 0;  //!< bit p set iff cell in partition p used
    };

    uint32_t takeFreeSlot(SlotKind kind);
    void releaseSlot(uint32_t idx);

    const Geometry *geo_;
    std::vector<Slot> slots_;   //!< index 0 == slot userRegs
    uint32_t slotsInUse_ = 0;
    uint32_t highWater_ = 0;
};

} // namespace pypim

#endif // PYPIM_DRIVER_SCRATCH_HPP
