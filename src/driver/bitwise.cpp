/**
 * @file
 * Bitwise emitters (Table II: not/and/or/xor for both dtypes — bitwise
 * ops act on the raw 32-bit pattern regardless of dtype). Register
 * operands are lane-aligned, so every stage is a handful of
 * per-partition parallel micro-ops.
 */
#include "driver/emit.hpp"

#include "common/error.hpp"

namespace pypim::emit
{

void
bitwise(BVOps &v, const RTypeInstr &in)
{
    const BV a = v.reg(in.ra);
    BV d = v.reg(in.rd);
    switch (in.op) {
      case ROp::BitNot:
        v.gateInto(Gate::Not, &a, nullptr, d);
        break;
      case ROp::BitAnd: {
        const BV y = v.reg(in.rb);
        BV na = v.not_(a);
        BV ny = v.not_(y);
        v.gateInto(Gate::Nor, &na, &ny, d);
        v.free(na);
        v.free(ny);
        break;
      }
      case ROp::BitOr: {
        const BV y = v.reg(in.rb);
        BV t = v.nor_(a, y);
        v.gateInto(Gate::Not, &t, nullptr, d);
        v.free(t);
        break;
      }
      case ROp::BitXor: {
        const BV y = v.reg(in.rb);
        BV t = v.xnor_(a, y);
        v.gateInto(Gate::Not, &t, nullptr, d);
        v.free(t);
        break;
      }
      default:
        panic("bitwise: not a bitwise op");
    }
}

} // namespace pypim::emit
