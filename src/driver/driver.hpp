/**
 * @file
 * The PyPIM host driver (paper §V-B).
 *
 * The driver translates ISA macro-instructions into micro-operation
 * streams. It is deliberately host software, not an on-chip
 * controller: the paper argues a software driver is both flexible
 * (updatable without replacing hardware) and fast enough not to
 * bottleneck the PIM chip — bench_driver reproduces that measurement.
 *
 * Two arithmetic modes select the algorithm family used for int
 * add/sub/mul (paper §II-B):
 *  - Serial: bit-serial element-parallel (ripple/schoolbook),
 *  - Parallel: bit-parallel element-parallel using partitions
 *    (carry-lookahead / carry-save).
 * Everything else (division, float, comparisons, bitwise, misc) uses
 * one implementation whose inner primitives already exploit partition
 * parallelism where profitable.
 */
#ifndef PYPIM_DRIVER_DRIVER_HPP
#define PYPIM_DRIVER_DRIVER_HPP

#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "driver/bitvec.hpp"
#include "driver/gatebuilder.hpp"
#include "isa/instruction.hpp"
#include "sim/sink.hpp"

namespace pypim
{

/** Macro-instruction to micro-operation translator. */
class Driver
{
  public:
    /** Arithmetic algorithm family (paper Fig. 4). */
    enum class Mode
    {
        Serial,
        Parallel
    };

    Driver(OperationSink &sink, const Geometry &geo,
           Mode mode = Mode::Parallel);

    const Geometry &geometry() const { return *geo_; }
    GateBuilder &builder() { return builder_; }

    Mode mode() const { return mode_; }
    void setMode(Mode m) { mode_ = m; }

    /** Disable partition parallelism entirely (ablation baseline). */
    void setPartitionsEnabled(bool on);

    /**
     * Enable/disable the translation stream cache. Element-parallel
     * R-type streams are data-independent, so the driver memoises the
     * translated micro-op stream per instruction signature and replays
     * it with a single batch write — the software analogue of the
     * paper's specialised (constant-folded) driver routines, and the
     * reason the host can outpace the chip's 1-op/cycle consumption.
     */
    void setStreamCacheEnabled(bool on) { streamCacheOn_ = on; }
    bool streamCacheEnabled() const { return streamCacheOn_; }
    /** Cached distinct instruction signatures. */
    size_t streamCacheSize() const { return streamCache_.size(); }

    /**
     * Enable/disable the trace cache layered over the stream cache
     * (sim/batch_trace.hpp): per signature, the recorded stream is
     * decoded, validated and fusion-optimised ONCE into a shared
     * immutable BatchTrace, and every subsequent hit submits the
     * pre-built trace handle — the pipeline and all engines replay it
     * with zero decode work. Sinks without trace support (e.g. the
     * bench BufferSink) fall back to raw stream replay transparently.
     * Observability: Stats::traceCacheHits/Misses and the fusion*
     * counters on stats().
     */
    void setTraceCacheEnabled(bool on) { traceCacheOn_ = on; }
    bool traceCacheEnabled() const { return traceCacheOn_; }

    /**
     * Enable/disable the window fusion pass applied to freshly built
     * traces (ablation knob). Changing it drops the cached trace
     * handles — they were optimised under the old setting — while the
     * recorded streams stay cached; traces rebuild lazily on the next
     * hit.
     */
    void setTraceFusionEnabled(bool on);
    bool traceFusionEnabled() const { return traceFusionOn_; }

    /** Drop every memoised stream and trace handle. */
    void
    clearStreamCache()
    {
        streamCache_.clear();
    }

    /**
     * Serialize the stream cache's signatures and recorded micro-op
     * streams into an opaque blob (Device::checkpoint). Trace handles
     * are NOT serialized — they are derived state, rebuilt lazily on
     * the first post-restore hit.
     */
    std::vector<uint8_t> exportStreamCache() const;
    /** Inverse of exportStreamCache; replaces the current cache. An
     *  empty blob just clears it. */
    void importStreamCache(const std::vector<uint8_t> &blob);

    /**
     * Enable/disable the bulk block-transfer I/O path
     * (sim/bulk_io.hpp). When on (the default) readBulk/writeBulk
     * hand whole transfers to the sink's gather/scatter kernels with
     * one pipeline drain per transfer; when off they fall back to the
     * element-wise oracle. Both settings are bit-identical in values
     * AND architectural Stats (test_bulk_io).
     */
    void setBulkIoEnabled(bool on) { bulkIoOn_ = on; }
    bool bulkIoEnabled() const { return bulkIoOn_; }

    /**
     * Bulk register readback: element i of the transfer is slot
     * @p reg of storage row rowStart + i*rowStep (warp warpStart +
     * row/rows, in-crossbar row row%rows), read into out[i]. Records
     * architectural Stats and driver instruction counts identical to
     * count execute(ReadInstr) calls. Returns false — with no ops
     * emitted and no stats recorded — when the transfer cannot take
     * the bulk path (knob off, builder masks unknown, or a sink
     * without bulk support); the caller then runs the element loop.
     */
    bool readBulk(uint8_t reg, uint32_t warpStart, uint64_t rowStart,
                  uint64_t rowStep, uint64_t count, uint32_t *out);

    /**
     * Bulk register upload: the write mirror of readBulk. Never
     * fails: when the bulk path is unavailable it EMITS the same
     * canonical coalesced run stream through the builder in one
     * submitted batch (the PYPIM_BULK_IO=0 fallback — still far
     * cheaper than per-element WriteInstr dispatch). Runs of equal
     * consecutive values coalesce into one masked Range write
     * (zeros/full cost O(runs), matching the constant-fill
     * factories); distinct values degenerate to the historical
     * per-element stream, bit-identical in Stats.
     */
    void writeBulk(uint8_t reg, uint32_t warpStart, uint64_t rowStart,
                   uint64_t rowStep, uint64_t count,
                   const uint32_t *values);

    /** Execute an R-type instruction (Table II). */
    void execute(const RTypeInstr &in);
    /** Execute a constant write. */
    void execute(const WriteInstr &in);
    /** Execute a read; returns the N-bit register value. */
    uint32_t execute(const ReadInstr &in);
    /** Execute an intra- or inter-warp move. */
    void execute(const MoveInstr &in);

    /** Driver-side instruction counters. */
    Stats &stats() { return stats_; }
    const Stats &stats() const { return stats_; }

  private:
    void validate(const RTypeInstr &in) const;
    void dispatch(const RTypeInstr &in);

    /** Signature of a cacheable R-type translation. */
    struct StreamKey
    {
        uint64_t fields;  //!< op|dtype|rd|ra|rb|rc|mode|partitions
        Range warps;
        Range rows;
        bool operator==(const StreamKey &) const = default;
    };
    struct StreamKeyHash
    {
        size_t
        operator()(const StreamKey &k) const
        {
            uint64_t h = k.fields * 0x9E3779B97F4A7C15ull;
            h ^= (static_cast<uint64_t>(k.warps.start) << 32 |
                  k.warps.stop) * 0xC2B2AE3D27D4EB4Full;
            h ^= (static_cast<uint64_t>(k.rows.start) << 32 |
                  (static_cast<uint64_t>(k.rows.stop) ^
                   (static_cast<uint64_t>(k.warps.step) << 20) ^
                   (static_cast<uint64_t>(k.rows.step) << 40))) *
                 0x165667B19E3779F9ull;
            return static_cast<size_t>(h ^ (h >> 29));
        }
    };
    StreamKey makeKey(const RTypeInstr &in) const;

    /**
     * One memoised translation: the recorded self-contained micro-op
     * stream plus (lazily, when the trace cache is on and the sink
     * supports it) the decoded, fused, shared immutable trace built
     * from it. The shared_ptr keeps in-flight pipelined replays alive
     * even if this cache is cleared.
     */
    struct StreamEntry
    {
        std::vector<Word> ops;
        std::shared_ptr<const BatchTrace> trace;
    };

    /** Replay one cache entry (trace handle fast path, else stream). */
    void replayEntry(StreamEntry &e);

    const Geometry *geo_;
    OperationSink *sink_;
    GateBuilder builder_;
    BVOps bv_;
    Mode mode_;
    Stats stats_;
    bool streamCacheOn_ = true;
    bool traceCacheOn_ = true;
    bool traceFusionOn_ = true;
    bool bulkIoOn_ = true;
    std::unordered_map<StreamKey, StreamEntry, StreamKeyHash>
        streamCache_;
};

} // namespace pypim

#endif // PYPIM_DRIVER_DRIVER_HPP
