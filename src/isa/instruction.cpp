#include "isa/instruction.hpp"

#include <sstream>

namespace pypim
{

const char *
dtypeName(DType t)
{
    return t == DType::Int32 ? "int32" : "float32";
}

const char *
ropName(ROp op)
{
    switch (op) {
      case ROp::Add:    return "add";
      case ROp::Sub:    return "sub";
      case ROp::Mul:    return "mul";
      case ROp::Div:    return "div";
      case ROp::Mod:    return "mod";
      case ROp::Neg:    return "neg";
      case ROp::Lt:     return "lt";
      case ROp::Le:     return "le";
      case ROp::Gt:     return "gt";
      case ROp::Ge:     return "ge";
      case ROp::Eq:     return "eq";
      case ROp::Ne:     return "ne";
      case ROp::BitNot: return "bit_not";
      case ROp::BitAnd: return "bit_and";
      case ROp::BitOr:  return "bit_or";
      case ROp::BitXor: return "bit_xor";
      case ROp::Sign:   return "sign";
      case ROp::Zero:   return "zero";
      case ROp::Abs:    return "abs";
      case ROp::Mux:    return "mux";
      case ROp::Copy:   return "copy";
      default:          return "?";
    }
}

uint32_t
ropArity(ROp op)
{
    switch (op) {
      case ROp::Neg:
      case ROp::BitNot:
      case ROp::Sign:
      case ROp::Zero:
      case ROp::Abs:
      case ROp::Copy:
        return 1;
      case ROp::Mux:
        return 3;
      default:
        return 2;
    }
}

bool
ropSupported(ROp op, DType dtype)
{
    if (op == ROp::Mod)
        return dtype == DType::Int32;
    return true;
}

bool
ropProducesBool(ROp op)
{
    switch (op) {
      case ROp::Lt:
      case ROp::Le:
      case ROp::Gt:
      case ROp::Ge:
      case ROp::Eq:
      case ROp::Ne:
      case ROp::Zero:
        return true;
      default:
        return false;
    }
}

std::string
RTypeInstr::toString() const
{
    std::ostringstream os;
    os << ropName(op) << "." << dtypeName(dtype)
       << " r" << static_cast<int>(rd) << ", r" << static_cast<int>(ra);
    if (ropArity(op) >= 2)
        os << ", r" << static_cast<int>(rb);
    if (ropArity(op) >= 3)
        os << ", r" << static_cast<int>(rc);
    os << " warps=" << warps.toString() << " rows=" << rows.toString();
    return os.str();
}

} // namespace pypim
