/**
 * @file
 * The PyPIM instruction-set architecture (paper §IV).
 *
 * Crossbars are abstracted as warps of threads: each thread is one
 * crossbar row holding R N-bit registers (the memory itself, paper
 * Fig. 10). The ISA has four instruction kinds:
 *
 *  - R-type: register arithmetic performed in parallel across all
 *    mask-selected threads of all mask-selected warps (Table II).
 *  - Move: warp-parallel thread-serial data movement, either between
 *    threads of the same warp or between aligned threads of warp
 *    pairs following the H-tree pattern of §III-F.
 *  - Read: one register of one thread of one warp -> N-bit response.
 *  - Write: one register value, repeated across a range of threads
 *    and warps (typically used for constants).
 *
 * Thread masks reuse the flexible {start, stop, step} range pattern of
 * the microarchitecture.
 */
#ifndef PYPIM_ISA_INSTRUCTION_HPP
#define PYPIM_ISA_INSTRUCTION_HPP

#include <cstdint>
#include <string>

#include "uarch/range.hpp"

namespace pypim
{

/** Element datatypes supported by the ISA (Table II columns). */
enum class DType : uint8_t
{
    Int32 = 0,
    Float32 = 1
};

const char *dtypeName(DType t);

/** R-type operations (Table II). */
enum class ROp : uint8_t
{
    // Arithmetic
    Add, Sub, Mul, Div, Mod, Neg,
    // Comparison (results are 0/1 in an Int32 register)
    Lt, Le, Gt, Ge, Eq, Ne,
    // Bitwise
    BitNot, BitAnd, BitOr, BitXor,
    // Miscellaneous
    Sign, Zero, Abs, Mux,
    // Extension: register-to-register copy (used by the library)
    Copy
};

const char *ropName(ROp op);

/** Number of register sources read by @p op (excluding rd). */
uint32_t ropArity(ROp op);

/** True iff (op, dtype) is a supported combination (Table II). */
bool ropSupported(ROp op, DType dtype);

/** True iff the result register holds Int32 regardless of dtype. */
bool ropProducesBool(ROp op);

/**
 * R-type macro-instruction: rd <- op(ra [, rb [, rc]]) applied to the
 * selected threads (rows) of the selected warps (crossbars). For Mux,
 * rc selects: rd <- rc ? ra : rb (rc holds 0/1).
 */
struct RTypeInstr
{
    ROp op = ROp::Add;
    DType dtype = DType::Int32;
    uint8_t rd = 0;
    uint8_t ra = 0;
    uint8_t rb = 0;
    uint8_t rc = 0;
    Range warps;
    Range rows;

    std::string toString() const;
};

/** Write one N-bit constant into register @p reg of selected threads. */
struct WriteInstr
{
    uint8_t reg = 0;
    uint32_t value = 0;
    Range warps;
    Range rows;
};

/** Read register @p reg of thread @p row in warp @p warp. */
struct ReadInstr
{
    uint8_t reg = 0;
    uint32_t warp = 0;
    uint32_t row = 0;
};

/**
 * Move instruction (paper §IV, Fig. 11(b)): copies srcReg of thread
 * srcRow to dstReg of thread dstRow. IntraWarp moves act inside each
 * selected warp in parallel (lowered to vertical logic); InterWarp
 * moves transfer between warp pairs over the H-tree: each source warp
 * in @p warps sends to warp + (dstStartWarp - warps.start).
 */
struct MoveInstr
{
    enum class Kind : uint8_t { IntraWarp, InterWarp };

    Kind kind = Kind::IntraWarp;
    uint8_t srcReg = 0;
    uint8_t dstReg = 0;
    uint32_t srcRow = 0;
    uint32_t dstRow = 0;
    Range warps;
    uint32_t dstStartWarp = 0;  //!< InterWarp only
};

} // namespace pypim

#endif // PYPIM_ISA_INSTRUCTION_HPP
