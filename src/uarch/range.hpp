/**
 * @file
 * Range-based mask pattern {start, start+step, ..., stop} (paper §III-B).
 *
 * Both the crossbar mask and the row mask use this pattern. The stop
 * bound is INCLUSIVE, exactly as defined in the paper ("where they must
 * satisfy that step divides stop - start"). The tensor library converts
 * Python/NumPy-style exclusive slices into this form at the boundary.
 */
#ifndef PYPIM_UARCH_RANGE_HPP
#define PYPIM_UARCH_RANGE_HPP

#include <cstdint>
#include <string>
#include <vector>

namespace pypim
{

/** Inclusive arithmetic-progression mask {start, start+step, ..., stop}. */
struct Range
{
    uint32_t start = 0;
    uint32_t stop = 0;   //!< inclusive
    uint32_t step = 1;

    Range() = default;
    Range(uint32_t start_, uint32_t stop_, uint32_t step_ = 1)
        : start(start_), stop(stop_), step(step_) {}

    /** Mask selecting the single element @p i. */
    static Range single(uint32_t i) { return Range(i, i, 1); }

    /** Mask selecting [0, n) contiguously; @p n must be >= 1. */
    static Range all(uint32_t n) { return Range(0, n - 1, 1); }

    /** Number of selected elements. */
    uint32_t count() const { return (stop - start) / step + 1; }

    /** True iff @p i is selected by this mask. */
    bool
    contains(uint32_t i) const
    {
        return i >= start && i <= stop && (i - start) % step == 0;
    }

    /** i-th selected element (0-based). */
    uint32_t at(uint32_t i) const { return start + i * step; }

    /**
     * True iff every element of @p o is also selected by this mask
     * (exact for well-formed ranges: both are arithmetic
     * progressions, so it suffices that o's endpoints land on this
     * progression and o's step is a multiple of this step).
     */
    bool
    containsAll(const Range &o) const
    {
        if (o.start == o.stop)
            return contains(o.start);
        return o.start >= start && o.stop <= stop &&
               (o.start - start) % step == 0 && o.step % step == 0;
    }

    bool operator==(const Range &o) const = default;

    /**
     * Throw pypim::Error unless the range is well-formed and within
     * [0, limit): start <= stop < limit, step >= 1, step | (stop-start).
     */
    void validate(uint32_t limit, const char *what) const;

    /**
     * Expand into a bit mask of ceil(limit/64) words; bit i set iff
     * element i is selected. Used to realize the row mask (paper
     * §III-B: "the row mask is expanded into a binary vector").
     */
    std::vector<uint64_t> expand(uint32_t limit) const;

    /**
     * Expand into @p words, reusing its storage (resized to
     * ceil(limit/64) and zeroed first). The allocation-free variant of
     * expand() for the simulator's per-RowMask-op hot path.
     */
    void expandInto(uint32_t limit, std::vector<uint64_t> &words) const;

    /** Invoke @p fn(i) for every selected element in ascending order. */
    template <typename Fn>
    void
    forEach(Fn &&fn) const
    {
        for (uint64_t i = start; i <= stop; i += step)
            fn(static_cast<uint32_t>(i));
    }

    std::string toString() const;
};

} // namespace pypim

#endif // PYPIM_UARCH_RANGE_HPP
