#include "uarch/range.hpp"

#include <sstream>

#include "common/error.hpp"

namespace pypim
{

void
Range::validate(uint32_t limit, const char *what) const
{
    // Hot path (checked on every instruction): build messages lazily.
    if (step == 0)
        fatal(std::string(what) + " mask: step must be >= 1");
    if (start > stop)
        fatal(std::string(what) + " mask: start > stop");
    if (stop >= limit) {
        fatal(std::string(what) + " mask: stop " + std::to_string(stop) +
              " out of range [0, " + std::to_string(limit) + ")");
    }
    if ((stop - start) % step != 0)
        fatal(std::string(what) + " mask: step must divide stop - start");
}

std::vector<uint64_t>
Range::expand(uint32_t limit) const
{
    std::vector<uint64_t> words;
    expandInto(limit, words);
    return words;
}

void
Range::expandInto(uint32_t limit, std::vector<uint64_t> &words) const
{
    words.assign((limit + 63) / 64, 0);
    forEach([&](uint32_t i) {
        words[i / 64] |= (1ull << (i % 64));
    });
}

std::string
Range::toString() const
{
    std::ostringstream os;
    os << "{" << start << ":" << stop << ":" << step << "}";
    return os.str();
}

} // namespace pypim
