#include "uarch/partition.hpp"

#include <string>

#include "common/error.hpp"

namespace pypim
{

namespace
{

/** Operand partitions and intra indices of the leftmost encoded gate. */
struct GateOperands
{
    uint32_t pA = 0, iA = 0;
    uint32_t pB = 0, iB = 0;
    uint32_t pOut = 0, iOut = 0;
    bool hasA = false, hasB = false;
};

GateOperands
splitOperands(const MicroOp &op, const Geometry &geo)
{
    const uint32_t pw = geo.partitionWidth();
    GateOperands g;
    panicIf(op.out >= geo.cols, "logicH: out column out of range");
    g.pOut = op.out / pw;
    g.iOut = op.out % pw;
    if (op.gate == Gate::Not || op.gate == Gate::Nor) {
        panicIf(op.inA >= geo.cols, "logicH: inA column out of range");
        g.pA = op.inA / pw;
        g.iA = op.inA % pw;
        g.hasA = true;
    }
    if (op.gate == Gate::Nor) {
        panicIf(op.inB >= geo.cols, "logicH: inB column out of range");
        g.pB = op.inB / pw;
        g.iB = op.inB % pw;
        g.hasB = true;
    }
    return g;
}

} // namespace

HalfGates
expandLogicH(const MicroOp &op, const Geometry &geo)
{
    const uint32_t numPart = geo.partitions;
    panicIf(numPart > maxPartitions,
            "expandLogicH: geometry exceeds maxPartitions");

    HalfGates hg;
    hg.gate = op.gate;
    hg.numPartitions = numPart;

    const GateOperands base = splitOperands(op, geo);

    // The inner input (if any) must lie within the closed span between
    // the extreme input pA and the output pOut; otherwise the deduced
    // transistor selects would exclude it from the gate's section.
    if (base.hasB) {
        const uint32_t lo = std::min(base.pA, base.pOut);
        const uint32_t hi = std::max(base.pA, base.pOut);
        panicIf(base.pB < lo || base.pB > hi,
                "logicH: inB partition " + std::to_string(base.pB) +
                " outside the gate span [" + std::to_string(lo) + ", " +
                std::to_string(hi) + "]");
    }

    // Repetition count (restriction 2). pStep == 0 encodes "no
    // repetition"; otherwise gates repeat until the output reaches pEnd.
    uint32_t count = 1;
    if (op.pStep != 0 && op.pEnd != base.pOut) {
        panicIf(op.pEnd < base.pOut,
                "logicH: pEnd precedes the first gate's output");
        panicIf((op.pEnd - base.pOut) % op.pStep != 0,
                "logicH: pStep must divide pEnd - pOut");
        count = (op.pEnd - base.pOut) / op.pStep + 1;
    }
    hg.numGates = count;

    // Assign per-partition opcode bits; detect overlap between gates.
    for (uint32_t k = 0; k < count; ++k) {
        const uint32_t shift = k * op.pStep;
        uint8_t fresh[maxPartitions] = {};
        auto claim = [&](uint32_t p, uint8_t bit) {
            panicIf(p >= numPart,
                    "logicH: repeated gate leaves the partition range");
            fresh[p] |= bit;
        };
        claim(base.pOut + shift, halfgate::out);
        if (base.hasA)
            claim(base.pA + shift, halfgate::inA);
        if (base.hasB)
            claim(base.pB + shift, halfgate::inB);
        for (uint32_t p = 0; p < numPart; ++p) {
            if (fresh[p] == 0)
                continue;
            panicIf(hg.opcodes[p] != 0,
                    "logicH: repeated gates overlap at partition " +
                    std::to_string(p));
            hg.opcodes[p] = fresh[p];
        }
    }

    // Deduce transistor selects (restriction 3). Direction is taken
    // from the leftmost gate; INIT gates canonically flow left-to-right.
    const bool ltr = !base.hasA || base.pA <= base.pOut;
    for (uint32_t t = 0; t + 1 < numPart; ++t) {
        bool cut;
        if (ltr) {
            cut = (hg.opcodes[t] & halfgate::out) ||
                  (hg.opcodes[t + 1] & halfgate::inA);
        } else {
            cut = (hg.opcodes[t] & halfgate::inA) ||
                  (hg.opcodes[t + 1] & halfgate::out);
        }
        hg.conducting[t] = !cut;
    }

    // Derive sections (maximal conducting runs) and their operands.
    const uint32_t pw = geo.partitionWidth();
    uint32_t begin = 0;
    uint32_t activeSections = 0;
    for (uint32_t p = 0; p < numPart; ++p) {
        const bool last = (p + 1 == numPart) || !hg.conducting[p];
        if (!last)
            continue;
        Section sec;
        sec.begin = begin;
        sec.end = p + 1;
        for (uint32_t q = begin; q <= p; ++q) {
            const uint8_t oc = hg.opcodes[q];
            if (oc & halfgate::inA) {
                panicIf(sec.numIn >= 2,
                        "logicH: more than two input halves in section");
                sec.inCol[sec.numIn++] =
                    static_cast<int32_t>(q * pw + base.iA);
            }
            if (oc & halfgate::inB) {
                panicIf(sec.numIn >= 2,
                        "logicH: more than two input halves in section");
                sec.inCol[sec.numIn++] =
                    static_cast<int32_t>(q * pw + base.iB);
            }
            if (oc & halfgate::out) {
                panicIf(sec.outCol >= 0,
                        "logicH: two output halves in one section");
                sec.outCol = static_cast<int32_t>(q * pw + base.iOut);
            }
        }
        if (sec.active()) {
            // A half-gate is only valid in combination with its other
            // half (paper III-D2): every active section must contain
            // exactly one output half and the gate's full input arity.
            panicIf(sec.outCol < 0,
                    "logicH: input half-gate without an output half");
            const uint32_t arity =
                op.gate == Gate::Nor ? 2 : (op.gate == Gate::Not ? 1 : 0);
            panicIf(sec.numIn != arity,
                    "logicH: section input halves (" +
                    std::to_string(sec.numIn) + ") do not match gate "
                    "arity (" + std::to_string(arity) + ")");
            ++activeSections;
        }
        hg.sections[hg.numSections++] = sec;
        begin = p + 1;
    }
    panicIf(activeSections != count,
            "logicH: active sections (" + std::to_string(activeSections) +
            ") do not match encoded gate count (" +
            std::to_string(count) + ")");
    return hg;
}

} // namespace pypim
