/**
 * @file
 * The 64-bit micro-operation format (paper §III, Fig. 5).
 *
 * Micro-operations are the words broadcast by the host driver to the
 * on-chip controller, which merely buffers and forwards them to all
 * crossbars. Seven operation types exist across the four families:
 *
 *  - CrossbarMask / RowMask: select active crossbars / rows as a
 *    range pattern {start, stop, step} (stop inclusive).
 *  - Read / Write: N-bit strided access at an intra-partition index
 *    (Fig. 6); the target crossbar/rows come from the current masks.
 *  - LogicH: horizontal stateful logic encoded with the half-gates
 *    technique: full column addresses for InA/InB/Out of the leftmost
 *    gate plus the periodic repetition pattern (pEnd, pStep)
 *    (§III-D3: 2 + 3 log w + 2 log N = 42 bits for the default
 *    geometry).
 *  - LogicV: vertical (transposed) logic between two rows, applied at
 *    one intra-partition index of every partition (§III-E).
 *  - Move: distributed inter-crossbar transfer over the H-tree; the
 *    source set is the current crossbar mask and the destination start
 *    is stored directly to avoid signed distances (§III-F, fn. 2).
 *
 * The encoding leaves spare bits (the paper reports 19 unused bits)
 * so larger geometries still fit; encode() validates field widths.
 */
#ifndef PYPIM_UARCH_MICROOP_HPP
#define PYPIM_UARCH_MICROOP_HPP

#include <cstdint>
#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "common/stats.hpp"
#include "uarch/range.hpp"

namespace pypim
{

/** Wire format of one micro-operation. */
using Word = uint64_t;

/** Micro-operation type (3-bit field). */
enum class OpType : uint8_t
{
    CrossbarMask = 0,
    RowMask = 1,
    Read = 2,
    Write = 3,
    LogicH = 4,
    LogicV = 5,
    Move = 6
};

/**
 * Stateful-logic gate set (paper §III-D2): INIT0/INIT1 are constant
 * gates (write-driver semantics), NOT and NOR switch the output from
 * its initialised 1 towards 0. Vertical ops support only
 * {INIT0, INIT1, NOT} (§III-E).
 */
enum class Gate : uint8_t
{
    Init0 = 0,
    Init1 = 1,
    Not = 2,
    Nor = 3
};

const char *gateName(Gate g);
const char *opTypeName(OpType t);

/** Bit-field layout constants for the 64-bit format. */
namespace fmt
{
    constexpr uint32_t typeLo = 61, typeW = 3;
    // Mask ops
    constexpr uint32_t startLo = 0, stopLo = 16, stepLo = 32, maskW = 16;
    // Read / Write
    constexpr uint32_t idxLo = 0, idxW = 6;
    constexpr uint32_t valLo = 6, valW = 32;
    // LogicH
    constexpr uint32_t gateLo = 0, gateW = 2;
    constexpr uint32_t inALo = 2, inBLo = 12, outLo = 22, colW = 10;
    constexpr uint32_t pEndLo = 32, pStepLo = 38, partW = 6;
    // LogicV
    constexpr uint32_t rowInLo = 2, rowOutLo = 18, rowW = 16;
    constexpr uint32_t vIdxLo = 34;
    // Move
    constexpr uint32_t dstStartLo = 0;
    constexpr uint32_t srcRowLo = 16, dstRowLo = 32;
    constexpr uint32_t srcIdxLo = 48, dstIdxLo = 54;
} // namespace fmt

/**
 * Decoded micro-operation. Only the fields relevant to @c type are
 * meaningful; factory functions zero the rest so that the default
 * equality comparison is exact for encode/decode round trips.
 */
struct MicroOp
{
    OpType type = OpType::CrossbarMask;
    Gate gate = Gate::Init0;
    Range range;                       //!< mask ops
    uint32_t index = 0;                //!< read/write/logicV slot
    uint32_t value = 0;                //!< write payload
    uint32_t inA = 0, inB = 0, out = 0; //!< logicH column addresses
    uint32_t pEnd = 0, pStep = 0;      //!< logicH repetition pattern
    uint32_t rowIn = 0, rowOut = 0;    //!< logicV rows
    uint32_t dstStart = 0;             //!< move destination start
    uint32_t srcRow = 0, dstRow = 0;   //!< move rows
    uint32_t srcIdx = 0, dstIdx = 0;   //!< move slots

    bool operator==(const MicroOp &o) const = default;

    /** Op class for statistics (identical numbering to OpType). */
    OpClass opClass() const { return static_cast<OpClass>(type); }

    // --- factories -----------------------------------------------------

    static MicroOp
    crossbarMask(Range r)
    {
        MicroOp op;
        op.type = OpType::CrossbarMask;
        op.range = r;
        return op;
    }

    static MicroOp
    rowMask(Range r)
    {
        MicroOp op;
        op.type = OpType::RowMask;
        op.range = r;
        return op;
    }

    static MicroOp
    read(uint32_t index)
    {
        MicroOp op;
        op.type = OpType::Read;
        op.index = index;
        return op;
    }

    static MicroOp
    write(uint32_t index, uint32_t value)
    {
        MicroOp op;
        op.type = OpType::Write;
        op.index = index;
        op.value = value;
        return op;
    }

    /**
     * Horizontal logic. @p inA/@p inB/@p out are full column addresses
     * of the leftmost gate. For Not, @p inB is ignored (canonicalised
     * to inA); for Init0/Init1 both inputs are canonicalised to 0.
     * @p pEnd is the partition holding the output of the last repeated
     * gate (== partition of @p out when not repeated); @p pStep is the
     * repetition stride (0 when not repeated).
     */
    static MicroOp
    logicH(Gate g, uint32_t inA, uint32_t inB, uint32_t out,
           uint32_t pEnd, uint32_t pStep)
    {
        MicroOp op;
        op.type = OpType::LogicH;
        op.gate = g;
        if (g == Gate::Init0 || g == Gate::Init1) {
            op.inA = 0;
            op.inB = 0;
        } else if (g == Gate::Not) {
            op.inA = inA;
            op.inB = inA;
        } else {
            op.inA = inA;
            op.inB = inB;
        }
        op.out = out;
        op.pEnd = pEnd;
        op.pStep = pStep;
        return op;
    }

    /** Vertical logic at intra-partition @p index of every partition. */
    static MicroOp
    logicV(Gate g, uint32_t rowIn, uint32_t rowOut, uint32_t index)
    {
        panicIf(g == Gate::Nor, "vertical logic supports only "
                "{INIT0, INIT1, NOT} (paper III-E)");
        MicroOp op;
        op.type = OpType::LogicV;
        op.gate = g;
        op.rowIn = (g == Gate::Init0 || g == Gate::Init1) ? 0 : rowIn;
        op.rowOut = rowOut;
        op.index = index;
        return op;
    }

    /** Inter-crossbar move (source set = current crossbar mask). */
    static MicroOp
    move(uint32_t dstStart, uint32_t srcRow, uint32_t dstRow,
         uint32_t srcIdx, uint32_t dstIdx)
    {
        MicroOp op;
        op.type = OpType::Move;
        op.dstStart = dstStart;
        op.srcRow = srcRow;
        op.dstRow = dstRow;
        op.srcIdx = srcIdx;
        op.dstIdx = dstIdx;
        return op;
    }

    // --- wire format ----------------------------------------------------

    /** Pack into the 64-bit wire format; panics if a field overflows. */
    Word encode() const;

    /** Unpack from the wire format. */
    static MicroOp decode(Word w);

    std::string toString() const;
};

/**
 * Fast inline encoders for the host driver's hot emission path.
 * Field-width checks are kept (they are branch-predictable and make
 * driver bugs fail loudly) but everything inlines into the caller.
 */
namespace enc
{

inline Word
typeBits(OpType t)
{
    return static_cast<Word>(t) << fmt::typeLo;
}

inline Word
maskOp(OpType t, const Range &r)
{
    using namespace fmt;
    panicIf(!fitsIn(r.start, maskW) || !fitsIn(r.stop, maskW) ||
            !fitsIn(r.step, maskW), "mask op field overflow");
    return typeBits(t) |
           (static_cast<Word>(r.start) << startLo) |
           (static_cast<Word>(r.stop) << stopLo) |
           (static_cast<Word>(r.step) << stepLo);
}

inline Word
crossbarMask(const Range &r)
{
    return maskOp(OpType::CrossbarMask, r);
}

inline Word
rowMask(const Range &r)
{
    return maskOp(OpType::RowMask, r);
}

inline Word
read(uint32_t index)
{
    panicIf(!fitsIn(index, fmt::idxW), "read index overflow");
    return typeBits(OpType::Read) | (static_cast<Word>(index));
}

inline Word
write(uint32_t index, uint32_t value)
{
    panicIf(!fitsIn(index, fmt::idxW), "write index overflow");
    return typeBits(OpType::Write) | static_cast<Word>(index) |
           (static_cast<Word>(value) << fmt::valLo);
}

inline Word
logicH(Gate g, uint32_t inA, uint32_t inB, uint32_t out,
       uint32_t pEnd, uint32_t pStep)
{
    using namespace fmt;
    panicIf(!fitsIn(inA, colW) || !fitsIn(inB, colW) ||
            !fitsIn(out, colW) || !fitsIn(pEnd, partW) ||
            !fitsIn(pStep, partW), "logicH field overflow");
    return typeBits(OpType::LogicH) |
           (static_cast<Word>(g) << gateLo) |
           (static_cast<Word>(inA) << inALo) |
           (static_cast<Word>(inB) << inBLo) |
           (static_cast<Word>(out) << outLo) |
           (static_cast<Word>(pEnd) << pEndLo) |
           (static_cast<Word>(pStep) << pStepLo);
}

inline Word
logicV(Gate g, uint32_t rowIn, uint32_t rowOut, uint32_t index)
{
    using namespace fmt;
    panicIf(!fitsIn(rowIn, rowW) || !fitsIn(rowOut, rowW) ||
            !fitsIn(index, idxW), "logicV field overflow");
    return typeBits(OpType::LogicV) |
           (static_cast<Word>(g) << gateLo) |
           (static_cast<Word>(rowIn) << rowInLo) |
           (static_cast<Word>(rowOut) << rowOutLo) |
           (static_cast<Word>(index) << vIdxLo);
}

inline Word
move(uint32_t dstStart, uint32_t srcRow, uint32_t dstRow,
     uint32_t srcIdx, uint32_t dstIdx)
{
    using namespace fmt;
    panicIf(!fitsIn(dstStart, maskW) || !fitsIn(srcRow, rowW) ||
            !fitsIn(dstRow, rowW) || !fitsIn(srcIdx, idxW) ||
            !fitsIn(dstIdx, idxW), "move field overflow");
    return typeBits(OpType::Move) |
           (static_cast<Word>(dstStart) << dstStartLo) |
           (static_cast<Word>(srcRow) << srcRowLo) |
           (static_cast<Word>(dstRow) << dstRowLo) |
           (static_cast<Word>(srcIdx) << srcIdxLo) |
           (static_cast<Word>(dstIdx) << dstIdxLo);
}

/** Op type of an encoded word (cheap peek without a full decode). */
inline OpType
peekType(Word w)
{
    return static_cast<OpType>(bitsGet(w, fmt::typeLo, fmt::typeW));
}

} // namespace enc

} // namespace pypim

#endif // PYPIM_UARCH_MICROOP_HPP
