/**
 * @file
 * Half-gates expansion of horizontal logic micro-operations
 * (paper §III-D2/D3, Table I, Fig. 8).
 *
 * A horizontal logic op names the InA/InB/Out columns of its leftmost
 * gate plus a periodic repetition pattern (pEnd, pStep). Expansion
 * reconstructs, per partition, the 3-bit half-gate opcode:
 *
 *      bit 2: apply the InA input voltage at intra index iA
 *      bit 1: apply the InB input voltage at intra index iB
 *      bit 0: apply the Out output voltage at intra index iOut
 *
 * (Table I indices: 000 = "-", 001 = "? -> Out", ..., 111 =
 * "(InA, InB) -> Out").
 *
 * Transistor selects are DEDUCED from the opcodes (third restriction):
 * for a left-to-right gate (pA <= pOut), the transistor between
 * partitions t and t+1 is non-conducting iff partition t has an Out
 * half or partition t+1 has an InA half; mirrored for pA > pOut.
 *
 * The expansion then derives the dynamic row sections (maximal runs of
 * conducting transistors) and the effective operand columns of each,
 * validating the restricted partition model as a real chip's periphery
 * would behave: malformed combinations (two output halves in one
 * section, an input half with no output half, the inner input outside
 * the gate span, ...) raise pypim::InternalError, because only a buggy
 * driver can produce them.
 */
#ifndef PYPIM_UARCH_PARTITION_HPP
#define PYPIM_UARCH_PARTITION_HPP

#include <array>
#include <cstdint>

#include "common/config.hpp"
#include "uarch/microop.hpp"

namespace pypim
{

/** Maximum partitions supported by the fixed-size expansion buffers. */
constexpr uint32_t maxPartitions = 64;

/** Half-gate opcode bits (Table I). */
namespace halfgate
{
    constexpr uint8_t inA = 0b100;
    constexpr uint8_t inB = 0b010;
    constexpr uint8_t out = 0b001;
} // namespace halfgate

/** One dynamic section with its effective gate operands. */
struct Section
{
    uint32_t begin = 0;   //!< first partition (inclusive)
    uint32_t end = 0;     //!< last partition (exclusive)
    int32_t outCol = -1;  //!< output column, or -1 if idle section
    std::array<int32_t, 2> inCol{-1, -1};
    uint32_t numIn = 0;

    /** True iff any voltage is applied inside this section. */
    bool active() const { return outCol >= 0 || numIn > 0; }
};

/** Result of expanding one horizontal logic op. */
struct HalfGates
{
    Gate gate = Gate::Nor;
    uint32_t numPartitions = 0;
    /** Per-partition opcode (Table I bits). */
    std::array<uint8_t, maxPartitions> opcodes{};
    /** conducting[t] == true iff the transistor between t and t+1
     *  conducts. */
    std::array<bool, maxPartitions> conducting{};
    std::array<Section, maxPartitions> sections{};
    uint32_t numSections = 0;
    /** Number of concurrent gates encoded by the op. */
    uint32_t numGates = 0;
};

/**
 * Expand and validate a LogicH micro-op against @p geo.
 * Panics (InternalError) on any violation of the restricted
 * partition model.
 */
HalfGates expandLogicH(const MicroOp &op, const Geometry &geo);

} // namespace pypim

#endif // PYPIM_UARCH_PARTITION_HPP
