#include "uarch/microop.hpp"

#include <sstream>

namespace pypim
{

const char *
gateName(Gate g)
{
    switch (g) {
      case Gate::Init0: return "INIT0";
      case Gate::Init1: return "INIT1";
      case Gate::Not:   return "NOT";
      case Gate::Nor:   return "NOR";
      default:          return "?";
    }
}

const char *
opTypeName(OpType t)
{
    switch (t) {
      case OpType::CrossbarMask: return "XB_MASK";
      case OpType::RowMask:      return "ROW_MASK";
      case OpType::Read:         return "READ";
      case OpType::Write:        return "WRITE";
      case OpType::LogicH:       return "LOGIC_H";
      case OpType::LogicV:       return "LOGIC_V";
      case OpType::Move:         return "MOVE";
      default:                   return "?";
    }
}

Word
MicroOp::encode() const
{
    switch (type) {
      case OpType::CrossbarMask:
        return enc::crossbarMask(range);
      case OpType::RowMask:
        return enc::rowMask(range);
      case OpType::Read:
        return enc::read(index);
      case OpType::Write:
        return enc::write(index, value);
      case OpType::LogicH:
        return enc::logicH(gate, inA, inB, out, pEnd, pStep);
      case OpType::LogicV:
        return enc::logicV(gate, rowIn, rowOut, index);
      case OpType::Move:
        return enc::move(dstStart, srcRow, dstRow, srcIdx, dstIdx);
      default:
        panic("encode: unknown op type");
    }
}

MicroOp
MicroOp::decode(Word w)
{
    using namespace fmt;
    const OpType t = enc::peekType(w);
    switch (t) {
      case OpType::CrossbarMask:
      case OpType::RowMask: {
        Range r(static_cast<uint32_t>(bitsGet(w, startLo, maskW)),
                static_cast<uint32_t>(bitsGet(w, stopLo, maskW)),
                static_cast<uint32_t>(bitsGet(w, stepLo, maskW)));
        return t == OpType::CrossbarMask ? crossbarMask(r) : rowMask(r);
      }
      case OpType::Read:
        return read(static_cast<uint32_t>(bitsGet(w, idxLo, idxW)));
      case OpType::Write:
        return write(static_cast<uint32_t>(bitsGet(w, idxLo, idxW)),
                     static_cast<uint32_t>(bitsGet(w, valLo, valW)));
      case OpType::LogicH:
        return logicH(static_cast<Gate>(bitsGet(w, gateLo, gateW)),
                      static_cast<uint32_t>(bitsGet(w, inALo, colW)),
                      static_cast<uint32_t>(bitsGet(w, inBLo, colW)),
                      static_cast<uint32_t>(bitsGet(w, outLo, colW)),
                      static_cast<uint32_t>(bitsGet(w, pEndLo, partW)),
                      static_cast<uint32_t>(bitsGet(w, pStepLo, partW)));
      case OpType::LogicV:
        return logicV(static_cast<Gate>(bitsGet(w, gateLo, gateW)),
                      static_cast<uint32_t>(bitsGet(w, rowInLo, rowW)),
                      static_cast<uint32_t>(bitsGet(w, rowOutLo, rowW)),
                      static_cast<uint32_t>(bitsGet(w, vIdxLo, idxW)));
      case OpType::Move:
        return move(static_cast<uint32_t>(bitsGet(w, dstStartLo, maskW)),
                    static_cast<uint32_t>(bitsGet(w, srcRowLo, rowW)),
                    static_cast<uint32_t>(bitsGet(w, dstRowLo, rowW)),
                    static_cast<uint32_t>(bitsGet(w, srcIdxLo, idxW)),
                    static_cast<uint32_t>(bitsGet(w, dstIdxLo, idxW)));
      default:
        panic("decode: unknown op type");
    }
}

std::string
MicroOp::toString() const
{
    std::ostringstream os;
    os << opTypeName(type);
    switch (type) {
      case OpType::CrossbarMask:
      case OpType::RowMask:
        os << " " << range.toString();
        break;
      case OpType::Read:
        os << " idx=" << index;
        break;
      case OpType::Write:
        os << " idx=" << index << " val=0x" << std::hex << value;
        break;
      case OpType::LogicH:
        os << " " << gateName(gate) << " inA=" << inA << " inB=" << inB
           << " out=" << out << " pEnd=" << pEnd << " pStep=" << pStep;
        break;
      case OpType::LogicV:
        os << " " << gateName(gate) << " rowIn=" << rowIn
           << " rowOut=" << rowOut << " idx=" << index;
        break;
      case OpType::Move:
        os << " dstStart=" << dstStart << " srcRow=" << srcRow
           << " dstRow=" << dstRow << " srcIdx=" << srcIdx
           << " dstIdx=" << dstIdx;
        break;
    }
    return os.str();
}

} // namespace pypim
