#include "pim/alloc.hpp"

#include <algorithm>
#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "sim/serialize.hpp"

namespace pypim
{

MemoryManager::MemoryManager(const Geometry &geo, uint32_t devices)
    : geo_(&geo),
      sliceWarps_(geo.numCrossbars /
                  std::max(1u, std::min(devices, geo.numCrossbars))),
      used_(geo.userRegs,
            std::vector<bool>(geo.numCrossbars, false))
{
}

bool
MemoryManager::rangeFree(uint32_t reg, uint32_t warpStart,
                         uint32_t warpCount) const
{
    for (uint32_t w = warpStart; w < warpStart + warpCount; ++w)
        if (used_[reg][w])
            return false;
    return true;
}

void
MemoryManager::markRange(uint32_t reg, uint32_t warpStart,
                         uint32_t warpCount, bool used)
{
    for (uint32_t w = warpStart; w < warpStart + warpCount; ++w)
        used_[reg][w] = used;
}

Allocation
MemoryManager::allocAt(uint32_t warpStart, uint32_t warpCount,
                       uint64_t elements)
{
    fatalIf(warpCount == 0 || elements == 0,
            "alloc: empty tensors are not allocatable");
    fatalIf(warpStart + warpCount > geo_->numCrossbars,
            "alloc: warp range out of bounds");
    fatalIf(elements > static_cast<uint64_t>(warpCount) * geo_->rows,
            "alloc: elements exceed the warp range capacity");
    for (uint32_t reg = 0; reg < geo_->userRegs; ++reg) {
        if (!rangeFree(reg, warpStart, warpCount))
            continue;
        markRange(reg, warpStart, warpCount, true);
        ++live_;
        slotsInUse_ += warpCount;
        return Allocation{reg, warpStart, warpCount, elements};
    }
    fatal("out of PIM memory: no free register covers warps [" +
          std::to_string(warpStart) + ", " +
          std::to_string(warpStart + warpCount) + ")");
}

Allocation
MemoryManager::alloc(uint64_t elements, const Allocation *hint)
{
    fatalIf(elements == 0, "alloc: empty tensors are not allocatable");
    const uint32_t warps = static_cast<uint32_t>(
        divCeil(elements, geo_->rows));
    fatalIf(warps > geo_->numCrossbars,
            "alloc: tensor of " + std::to_string(elements) +
            " elements exceeds the memory (" +
            std::to_string(static_cast<uint64_t>(geo_->numCrossbars) *
                           geo_->rows) + " threads)");
    // Reference-tensor alignment (paper §V-A): try the hinted warp
    // range first so subsequent arithmetic needs no fall-back copy.
    if (hint && hint->warpCount >= warps &&
        hint->warpStart + warps <= geo_->numCrossbars) {
        for (uint32_t reg = 0; reg < geo_->userRegs; ++reg) {
            if (rangeFree(reg, hint->warpStart, warps)) {
                markRange(reg, hint->warpStart, warps, true);
                ++live_;
                slotsInUse_ += warps;
                return Allocation{reg, hint->warpStart, warps, elements};
            }
        }
    }
    // Shard-aware first fit across registers and warp offsets: the
    // first pass admits only ranges fully inside one sub-device
    // slice, so tensor traffic stays intra-device whenever the memory
    // allows it (tensors wider than a slice, and a fragmented memory,
    // fall through to the unrestricted pass and stripe).
    const bool fitsSlice = warps <= sliceWarps_;
    for (int pass = fitsSlice ? 0 : 1; pass < 2; ++pass) {
        const bool withinSlice = pass == 0;
        for (uint32_t reg = 0; reg < geo_->userRegs; ++reg) {
            for (uint32_t w = 0; w + warps <= geo_->numCrossbars;
                 ++w) {
                if (withinSlice &&
                    w / sliceWarps_ != (w + warps - 1) / sliceWarps_)
                    continue;
                if (rangeFree(reg, w, warps)) {
                    markRange(reg, w, warps, true);
                    ++live_;
                    slotsInUse_ += warps;
                    return Allocation{reg, w, warps, elements};
                }
            }
        }
    }
    fatal("out of PIM memory: no register/warp range fits " +
          std::to_string(elements) + " elements");
}

std::vector<uint8_t>
MemoryManager::exportState() const
{
    ByteWriter w;
    w.u32(static_cast<uint32_t>(used_.size()));
    w.u32(used_.empty()
              ? 0
              : static_cast<uint32_t>(used_[0].size()));
    w.u32(live_);
    w.u64(slotsInUse_);
    // Bit-packed occupancy, register-major (8 warps per byte).
    uint8_t acc = 0;
    int nbits = 0;
    for (const auto &reg : used_) {
        for (bool b : reg) {
            acc |= static_cast<uint8_t>(b) << nbits;
            if (++nbits == 8) {
                w.u8(acc);
                acc = 0;
                nbits = 0;
            }
        }
    }
    if (nbits)
        w.u8(acc);
    return w.take();
}

void
MemoryManager::importState(const std::vector<uint8_t> &blob)
{
    if (blob.empty()) {
        for (auto &reg : used_)
            std::fill(reg.begin(), reg.end(), false);
        live_ = 0;
        slotsInUse_ = 0;
        return;
    }
    ByteReader r(blob);
    const uint32_t regs = r.u32();
    const uint32_t warps = r.u32();
    fatalIf(regs != used_.size() ||
                (regs != 0 && warps != used_[0].size()),
            "allocator restore: occupancy shape mismatch");
    const uint32_t live = r.u32();
    const uint64_t slots = r.u64();
    uint8_t acc = 0;
    int nbits = 0;
    for (auto &reg : used_) {
        for (size_t w = 0; w < reg.size(); ++w) {
            if (nbits == 0) {
                acc = r.u8();
                nbits = 8;
            }
            reg[w] = acc & 1;
            acc >>= 1;
            --nbits;
        }
    }
    r.expectEnd("allocator state");
    live_ = live;
    slotsInUse_ = slots;
}

void
MemoryManager::free(const Allocation &a)
{
    panicIf(a.reg >= geo_->userRegs ||
            a.warpStart + a.warpCount > geo_->numCrossbars,
            "free: allocation out of range");
    for (uint32_t w = a.warpStart; w < a.warpStart + a.warpCount; ++w)
        panicIf(!used_[a.reg][w], "free: slot already free");
    markRange(a.reg, a.warpStart, a.warpCount, false);
    --live_;
    slotsInUse_ -= a.warpCount;
}

} // namespace pypim
