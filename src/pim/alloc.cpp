#include "pim/alloc.hpp"

#include <algorithm>
#include <string>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace pypim
{

MemoryManager::MemoryManager(const Geometry &geo, uint32_t devices)
    : geo_(&geo),
      sliceWarps_(geo.numCrossbars /
                  std::max(1u, std::min(devices, geo.numCrossbars))),
      used_(geo.userRegs,
            std::vector<bool>(geo.numCrossbars, false))
{
}

bool
MemoryManager::rangeFree(uint32_t reg, uint32_t warpStart,
                         uint32_t warpCount) const
{
    for (uint32_t w = warpStart; w < warpStart + warpCount; ++w)
        if (used_[reg][w])
            return false;
    return true;
}

void
MemoryManager::markRange(uint32_t reg, uint32_t warpStart,
                         uint32_t warpCount, bool used)
{
    for (uint32_t w = warpStart; w < warpStart + warpCount; ++w)
        used_[reg][w] = used;
}

Allocation
MemoryManager::allocAt(uint32_t warpStart, uint32_t warpCount,
                       uint64_t elements)
{
    fatalIf(warpCount == 0 || elements == 0,
            "alloc: empty tensors are not allocatable");
    fatalIf(warpStart + warpCount > geo_->numCrossbars,
            "alloc: warp range out of bounds");
    fatalIf(elements > static_cast<uint64_t>(warpCount) * geo_->rows,
            "alloc: elements exceed the warp range capacity");
    for (uint32_t reg = 0; reg < geo_->userRegs; ++reg) {
        if (!rangeFree(reg, warpStart, warpCount))
            continue;
        markRange(reg, warpStart, warpCount, true);
        ++live_;
        slotsInUse_ += warpCount;
        return Allocation{reg, warpStart, warpCount, elements};
    }
    fatal("out of PIM memory: no free register covers warps [" +
          std::to_string(warpStart) + ", " +
          std::to_string(warpStart + warpCount) + ")");
}

Allocation
MemoryManager::alloc(uint64_t elements, const Allocation *hint)
{
    fatalIf(elements == 0, "alloc: empty tensors are not allocatable");
    const uint32_t warps = static_cast<uint32_t>(
        divCeil(elements, geo_->rows));
    fatalIf(warps > geo_->numCrossbars,
            "alloc: tensor of " + std::to_string(elements) +
            " elements exceeds the memory (" +
            std::to_string(static_cast<uint64_t>(geo_->numCrossbars) *
                           geo_->rows) + " threads)");
    // Reference-tensor alignment (paper §V-A): try the hinted warp
    // range first so subsequent arithmetic needs no fall-back copy.
    if (hint && hint->warpCount >= warps &&
        hint->warpStart + warps <= geo_->numCrossbars) {
        for (uint32_t reg = 0; reg < geo_->userRegs; ++reg) {
            if (rangeFree(reg, hint->warpStart, warps)) {
                markRange(reg, hint->warpStart, warps, true);
                ++live_;
                slotsInUse_ += warps;
                return Allocation{reg, hint->warpStart, warps, elements};
            }
        }
    }
    // Shard-aware first fit across registers and warp offsets: the
    // first pass admits only ranges fully inside one sub-device
    // slice, so tensor traffic stays intra-device whenever the memory
    // allows it (tensors wider than a slice, and a fragmented memory,
    // fall through to the unrestricted pass and stripe).
    const bool fitsSlice = warps <= sliceWarps_;
    for (int pass = fitsSlice ? 0 : 1; pass < 2; ++pass) {
        const bool withinSlice = pass == 0;
        for (uint32_t reg = 0; reg < geo_->userRegs; ++reg) {
            for (uint32_t w = 0; w + warps <= geo_->numCrossbars;
                 ++w) {
                if (withinSlice &&
                    w / sliceWarps_ != (w + warps - 1) / sliceWarps_)
                    continue;
                if (rangeFree(reg, w, warps)) {
                    markRange(reg, w, warps, true);
                    ++live_;
                    slotsInUse_ += warps;
                    return Allocation{reg, w, warps, elements};
                }
            }
        }
    }
    fatal("out of PIM memory: no register/warp range fits " +
          std::to_string(elements) + " elements");
}

void
MemoryManager::free(const Allocation &a)
{
    panicIf(a.reg >= geo_->userRegs ||
            a.warpStart + a.warpCount > geo_->numCrossbars,
            "free: allocation out of range");
    for (uint32_t w = a.warpStart; w < a.warpStart + a.warpCount; ++w)
        panicIf(!used_[a.reg][w], "free: slot already free");
    markRange(a.reg, a.warpStart, a.warpCount, false);
    --live_;
    slotsInUse_ -= a.warpCount;
}

} // namespace pypim
