/**
 * @file
 * Umbrella header for the PyPIM development library: include this to
 * program PIM tensors (the C++ analogue of `import pypim as pim`).
 */
#ifndef PYPIM_PIM_PYPIM_HPP
#define PYPIM_PIM_PYPIM_HPP

#include "pim/device.hpp"
#include "pim/profiler.hpp"
#include "pim/tensor.hpp"

#endif // PYPIM_PIM_PYPIM_HPP
