#include "pim/lowering.hpp"

#include <algorithm>

#include "common/bitops.hpp"
#include "common/error.hpp"

namespace pypim::lowering
{

std::vector<Segment>
segments(const Tensor &t)
{
    panicIf(!t.valid(), "segments: invalid tensor");
    const uint32_t rows = t.device().geometry().rows;
    const Allocation &a = t.allocation();
    const uint64_t step = t.viewStep();

    struct WarpPattern
    {
        uint32_t warp;
        uint32_t r0;
        uint32_t count;
        uint64_t firstElement;
    };
    std::vector<WarpPattern> pats;
    uint64_t e = 0;
    while (e < t.size()) {
        const uint64_t s = t.storageRow(e);
        const uint32_t warp = a.warpStart + static_cast<uint32_t>(s / rows);
        const uint32_t r0 = static_cast<uint32_t>(s % rows);
        // Elements that stay within this warp.
        const uint64_t maxK = (rows - 1 - r0) / step + 1;
        const uint32_t k = static_cast<uint32_t>(
            std::min<uint64_t>(maxK, t.size() - e));
        pats.push_back({warp, r0, k, e});
        e += k;
    }
    // Merge consecutive warps with identical local patterns.
    std::vector<Segment> out;
    size_t i = 0;
    while (i < pats.size()) {
        size_t j = i + 1;
        while (j < pats.size() && pats[j].warp == pats[j - 1].warp + 1 &&
               pats[j].r0 == pats[i].r0 && pats[j].count == pats[i].count) {
            ++j;
        }
        Segment seg;
        seg.warps = Range(pats[i].warp, pats[j - 1].warp, 1);
        seg.rows = Range(pats[i].r0,
                         pats[i].r0 +
                             (pats[i].count - 1) *
                                 static_cast<uint32_t>(step),
                         static_cast<uint32_t>(std::max<uint64_t>(step, 1)));
        seg.firstElement = pats[i].firstElement;
        out.push_back(seg);
        i = j;
    }
    return out;
}

bool
samePositions(const Tensor &a, const Tensor &b)
{
    if (!a.valid() || !b.valid() || a.size() != b.size())
        return false;
    if (&a.device() != &b.device())
        return false;
    if (a.absoluteRow(0) != b.absoluteRow(0))
        return false;
    return a.size() == 1 || a.viewStep() == b.viewStep();
}

Tensor
allocLikePattern(const Tensor &pattern, DType dtype)
{
    Device &dev = pattern.device();
    const uint32_t rows = dev.geometry().rows;
    const uint64_t firstRow = pattern.absoluteRow(0);
    const uint64_t lastRow = pattern.absoluteRow(pattern.size() - 1);
    const uint32_t warpFirst = static_cast<uint32_t>(firstRow / rows);
    const uint32_t warpLast = static_cast<uint32_t>(lastRow / rows);
    const Allocation a = dev.allocator().allocAt(
        warpFirst, warpLast - warpFirst + 1, pattern.size());
    auto st = std::make_shared<TensorStorage>(dev, a, dtype);
    const uint64_t viewStart =
        firstRow - static_cast<uint64_t>(warpFirst) * rows;
    return Tensor::wrap(std::move(st), viewStart, pattern.viewStep(),
                        pattern.size());
}

void
rtypeOp(ROp op, DType dtype, const Tensor &out, const Tensor &a,
        const Tensor *b, const Tensor *c)
{
    panicIf(!samePositions(out, a) || (b && !samePositions(out, *b)) ||
            (c && !samePositions(out, *c)),
            "rtypeOp: operands are not position-aligned");
    Device &dev = out.device();
    RTypeInstr in;
    in.op = op;
    in.dtype = dtype;
    in.rd = static_cast<uint8_t>(out.reg());
    in.ra = static_cast<uint8_t>(a.reg());
    in.rb = static_cast<uint8_t>(b ? b->reg() : 0);
    in.rc = static_cast<uint8_t>(c ? c->reg() : 0);
    for (const auto &seg : segments(out)) {
        in.warps = seg.warps;
        in.rows = seg.rows;
        dev.driver().execute(in);
    }
}

namespace
{

/** Split an arithmetic warp range into power-of-4-step ranges and emit
 *  one inter-warp move per piece. */
void
emitMoveRanges(Device &dev, const Range &src, int64_t dist,
               uint32_t srcRow, uint32_t dstRow, uint32_t srcReg,
               uint32_t dstReg)
{
    if (!isPow4(src.step)) {
        // step = 2 * 4^k: the odd and even halves are both pow4.
        const Range evens(src.start,
                          src.count() >= 2
                              ? src.at(((src.count() - 1) / 2) * 2)
                              : src.start,
                          src.step * 2);
        emitMoveRanges(dev, evens, dist, srcRow, dstRow, srcReg, dstReg);
        if (src.count() >= 2) {
            const Range odds(src.start + src.step,
                             src.at(((src.count() - 2) / 2) * 2 + 1),
                             src.step * 2);
            emitMoveRanges(dev, odds, dist, srcRow, dstRow, srcReg,
                           dstReg);
        }
        return;
    }
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::InterWarp;
    mv.srcReg = static_cast<uint8_t>(srcReg);
    mv.dstReg = static_cast<uint8_t>(dstReg);
    mv.srcRow = srcRow;
    mv.dstRow = dstRow;
    mv.warps = src;
    mv.dstStartWarp = static_cast<uint32_t>(src.start + dist);
    dev.driver().execute(mv);
}

} // namespace

void
interWarpMoves(Device &dev, const std::vector<uint32_t> &srcWarps,
               int64_t dist, uint32_t srcRow, uint32_t dstRow,
               uint32_t srcReg, uint32_t dstReg)
{
    // Greedily compress the sorted warp list into arithmetic ranges.
    size_t i = 0;
    while (i < srcWarps.size()) {
        if (i + 1 == srcWarps.size()) {
            emitMoveRanges(dev, Range::single(srcWarps[i]), dist, srcRow,
                           dstRow, srcReg, dstReg);
            break;
        }
        const uint32_t stride = srcWarps[i + 1] - srcWarps[i];
        size_t j = i + 1;
        while (j + 1 < srcWarps.size() &&
               srcWarps[j + 1] - srcWarps[j] == stride) {
            ++j;
        }
        emitMoveRanges(dev, Range(srcWarps[i], srcWarps[j], stride), dist,
                       srcRow, dstRow, srcReg, dstReg);
        i = j + 1;
    }
}

namespace
{

/** Strategy 5: correct-but-slow host gather. */
void
hostGather(const Tensor &src, const Tensor &dst)
{
    Device &dev = src.device();
    for (uint64_t i = 0; i < src.size(); ++i) {
        const auto [sw, sr] = src.position(i);
        const auto [dw, dr] = dst.position(i);
        ReadInstr rd;
        rd.reg = static_cast<uint8_t>(src.reg());
        rd.warp = sw;
        rd.row = sr;
        const uint32_t v = dev.driver().execute(rd);
        WriteInstr w;
        w.reg = static_cast<uint8_t>(dst.reg());
        w.value = v;
        w.warps = Range::single(dw);
        w.rows = Range::single(dr);
        dev.driver().execute(w);
    }
}

} // namespace

void
moveElements(const Tensor &src, const Tensor &dst)
{
    panicIf(src.size() != dst.size(), "moveElements: length mismatch");
    Device &dev = src.device();
    panicIf(&dev != &dst.device(),
            "moveElements: tensors on different devices");
    const uint64_t n = src.size();

    // Strategy 1: identical thread positions -> register copy.
    if (samePositions(src, dst)) {
        if (src.reg() != dst.reg() ||
            src.storage()->alloc.warpStart != dst.storage()->alloc.warpStart)
            rtypeOp(ROp::Copy, src.dtype(), dst, src);
        return;
    }

    // Classify the element-wise position mapping.
    bool rowsEqual = true;
    bool warpDistConst = true;
    bool warpsEqual = true;
    int64_t dist = 0;
    for (uint64_t i = 0; i < n; ++i) {
        const auto [sw, sr] = src.position(i);
        const auto [dw, dr] = dst.position(i);
        if (sr != dr)
            rowsEqual = false;
        const int64_t d = static_cast<int64_t>(dw) - sw;
        if (i == 0)
            dist = d;
        else if (d != dist)
            warpDistConst = false;
        if (d != 0)
            warpsEqual = false;
    }

    // Strategy 2: same rows, constant warp distance -> one (split)
    // inter-warp move per distinct row.
    if (rowsEqual && warpDistConst && dist != 0) {
        std::vector<std::vector<uint32_t>> byRow(
            dev.geometry().rows);
        for (uint64_t i = 0; i < n; ++i) {
            const auto [sw, sr] = src.position(i);
            byRow[sr].push_back(sw);
        }
        for (uint32_t r = 0; r < byRow.size(); ++r) {
            if (byRow[r].empty())
                continue;
            std::sort(byRow[r].begin(), byRow[r].end());
            interWarpMoves(dev, byRow[r], dist, r, r, src.reg(),
                           dst.reg());
        }
        return;
    }

    if (warpsEqual) {
        // Group (srcRow -> dstRow) pairs per warp.
        struct PerWarp
        {
            uint32_t warp;
            std::vector<std::pair<uint32_t, uint32_t>> pairs;
        };
        std::vector<PerWarp> perWarp;
        for (uint64_t i = 0; i < n; ++i) {
            const auto [sw, sr] = src.position(i);
            const auto [dw, dr] = dst.position(i);
            (void)dw;
            if (perWarp.empty() || perWarp.back().warp != sw)
                perWarp.push_back({sw, {}});
            perWarp.back().pairs.push_back({sr, dr});
        }
        // Strategy 3: identical row mapping in every warp, contiguous
        // warp span -> warp-parallel intra-warp moves.
        bool uniform = true;
        for (size_t k = 1; k < perWarp.size(); ++k) {
            if (perWarp[k].pairs != perWarp[0].pairs ||
                perWarp[k].warp != perWarp[k - 1].warp + 1) {
                uniform = false;
                break;
            }
        }
        MoveInstr mv;
        mv.kind = MoveInstr::Kind::IntraWarp;
        mv.srcReg = static_cast<uint8_t>(src.reg());
        mv.dstReg = static_cast<uint8_t>(dst.reg());
        if (uniform) {
            mv.warps = Range(perWarp.front().warp, perWarp.back().warp, 1);
            for (const auto &[sr, dr] : perWarp[0].pairs) {
                mv.srcRow = sr;
                mv.dstRow = dr;
                dev.driver().execute(mv);
            }
            return;
        }
        // Strategy 4: per-warp thread-serial moves.
        for (const auto &pw : perWarp) {
            mv.warps = Range::single(pw.warp);
            for (const auto &[sr, dr] : pw.pairs) {
                mv.srcRow = sr;
                mv.dstRow = dr;
                dev.driver().execute(mv);
            }
        }
        return;
    }

    // Strategy 5: arbitrary remapping.
    hostGather(src, dst);
}

} // namespace pypim::lowering
