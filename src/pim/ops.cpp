/**
 * @file
 * Elementwise tensor operations: operator overloading (paper Fig. 2)
 * lowered through the alignment engine. Misaligned operands are
 * materialised onto the left operand's threads first (the paper's
 * fall-back copy, §V-A), then a single R-type instruction stream runs
 * on the shared threads.
 */
#include "pim/tensor.hpp"

#include "common/error.hpp"
#include "pim/lowering.hpp"

namespace pypim
{

namespace
{

/** Result dtype of an op over operands of dtype @p dt. */
DType
resultDtype(ROp op, DType dt)
{
    return ropProducesBool(op) ? DType::Int32 : dt;
}

Tensor
binaryOp(ROp op, const Tensor &a, const Tensor &b)
{
    fatalIf(!a.valid() || !b.valid(), "op: invalid tensor");
    fatalIf(a.size() != b.size(),
            "op: size mismatch (" + std::to_string(a.size()) + " vs " +
            std::to_string(b.size()) + ")");
    fatalIf(a.dtype() != b.dtype(), "op: dtype mismatch");
    fatalIf(&a.device() != &b.device(),
            "op: tensors on different devices");
    fatalIf(!ropSupported(op, a.dtype()),
            std::string("op ") + ropName(op) + " unsupported for " +
            dtypeName(a.dtype()));
    Tensor rhs = lowering::samePositions(a, b)
        ? b : b.materializeLike(a);
    Tensor out = lowering::allocLikePattern(a, resultDtype(op, a.dtype()));
    lowering::rtypeOp(op, a.dtype(), out, a, &rhs);
    return out;
}

Tensor
unaryOp(ROp op, const Tensor &a)
{
    fatalIf(!a.valid(), "op: invalid tensor");
    fatalIf(!ropSupported(op, a.dtype()),
            std::string("op ") + ropName(op) + " unsupported for " +
            dtypeName(a.dtype()));
    Tensor out = lowering::allocLikePattern(a, resultDtype(op, a.dtype()));
    lowering::rtypeOp(op, a.dtype(), out, a);
    return out;
}

Tensor
scalarRhs(const Tensor &a, float s)
{
    fatalIf(a.dtype() != DType::Float32,
            "op: float scalar with a non-float tensor");
    return Tensor::fullLike(a, s);
}

Tensor
scalarRhs(const Tensor &a, int32_t s)
{
    fatalIf(a.dtype() != DType::Int32,
            "op: int scalar with a non-int tensor");
    return Tensor::fullLike(a, s);
}

} // namespace

// --- arithmetic -----------------------------------------------------------

Tensor operator+(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Add, a, b);
}

Tensor operator-(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Sub, a, b);
}

Tensor operator*(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Mul, a, b);
}

Tensor operator/(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Div, a, b);
}

Tensor operator%(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Mod, a, b);
}

Tensor operator-(const Tensor &a)
{
    return unaryOp(ROp::Neg, a);
}

// --- comparisons ------------------------------------------------------------

Tensor operator<(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Lt, a, b);
}

Tensor operator<=(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Le, a, b);
}

Tensor operator>(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Gt, a, b);
}

Tensor operator>=(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Ge, a, b);
}

Tensor operator==(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Eq, a, b);
}

Tensor operator!=(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::Ne, a, b);
}

// --- bitwise ---------------------------------------------------------------

Tensor operator&(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::BitAnd, a, b);
}

Tensor operator|(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::BitOr, a, b);
}

Tensor operator^(const Tensor &a, const Tensor &b)
{
    return binaryOp(ROp::BitXor, a, b);
}

Tensor operator~(const Tensor &a)
{
    return unaryOp(ROp::BitNot, a);
}

// --- scalar broadcasts -------------------------------------------------------

Tensor operator+(const Tensor &a, float s)
{
    return binaryOp(ROp::Add, a, scalarRhs(a, s));
}

Tensor operator+(float s, const Tensor &a)
{
    return a + s;
}

Tensor operator+(const Tensor &a, int32_t s)
{
    return binaryOp(ROp::Add, a, scalarRhs(a, s));
}

Tensor operator-(const Tensor &a, float s)
{
    return binaryOp(ROp::Sub, a, scalarRhs(a, s));
}

Tensor operator-(float s, const Tensor &a)
{
    return binaryOp(ROp::Sub, scalarRhs(a, s), a);
}

Tensor operator-(const Tensor &a, int32_t s)
{
    return binaryOp(ROp::Sub, a, scalarRhs(a, s));
}

Tensor operator*(const Tensor &a, float s)
{
    return binaryOp(ROp::Mul, a, scalarRhs(a, s));
}

Tensor operator*(float s, const Tensor &a)
{
    return a * s;
}

Tensor operator*(const Tensor &a, int32_t s)
{
    return binaryOp(ROp::Mul, a, scalarRhs(a, s));
}

Tensor operator/(const Tensor &a, float s)
{
    return binaryOp(ROp::Div, a, scalarRhs(a, s));
}

Tensor operator/(float s, const Tensor &a)
{
    return binaryOp(ROp::Div, scalarRhs(a, s), a);
}

Tensor operator<(const Tensor &a, float s)
{
    return binaryOp(ROp::Lt, a, scalarRhs(a, s));
}

Tensor operator>(const Tensor &a, float s)
{
    return binaryOp(ROp::Gt, a, scalarRhs(a, s));
}

Tensor operator<=(const Tensor &a, float s)
{
    return binaryOp(ROp::Le, a, scalarRhs(a, s));
}

Tensor operator>=(const Tensor &a, float s)
{
    return binaryOp(ROp::Ge, a, scalarRhs(a, s));
}

Tensor operator==(const Tensor &a, float s)
{
    return binaryOp(ROp::Eq, a, scalarRhs(a, s));
}

Tensor operator==(const Tensor &a, int32_t s)
{
    return binaryOp(ROp::Eq, a, scalarRhs(a, s));
}

// --- miscellaneous ------------------------------------------------------------

Tensor
where(const Tensor &cond, const Tensor &a, const Tensor &b)
{
    fatalIf(!cond.valid() || !a.valid() || !b.valid(),
            "where: invalid tensor");
    fatalIf(cond.dtype() != DType::Int32,
            "where: condition must be an Int32 0/1 tensor");
    fatalIf(a.dtype() != b.dtype(), "where: dtype mismatch");
    fatalIf(cond.size() != a.size() || a.size() != b.size(),
            "where: size mismatch");
    Tensor rb = lowering::samePositions(a, b) ? b : b.materializeLike(a);
    Tensor rc = lowering::samePositions(a, cond)
        ? cond : cond.materializeLike(a);
    Tensor out = lowering::allocLikePattern(a, a.dtype());
    lowering::rtypeOp(ROp::Mux, a.dtype(), out, a, &rb, &rc);
    return out;
}

Tensor
abs(const Tensor &a)
{
    return unaryOp(ROp::Abs, a);
}

Tensor
sign(const Tensor &a)
{
    return unaryOp(ROp::Sign, a);
}

Tensor
isZero(const Tensor &a)
{
    return unaryOp(ROp::Zero, a);
}

Tensor
minimum(const Tensor &a, const Tensor &b)
{
    return where(a < b, a, b);
}

Tensor
maximum(const Tensor &a, const Tensor &b)
{
    return where(a < b, b, a);
}

} // namespace pypim
