/**
 * @file
 * Logarithmic-depth reductions (paper §V-A: ".sum() for aggregation
 * ... in logarithmic time [41]").
 *
 * The view is first canonicalised, then folded in halves: an
 * inter-warp phase transfers the upper half of the warps onto the
 * lower half through the H-tree (one move per row, parallel across
 * warp pairs — warp-parallel thread-serial, paper §IV), followed by an
 * intra-warp phase using vertical-logic moves. Each fold level costs
 * O(rows) moves plus one combining instruction: log2(n) combining
 * steps in total.
 *
 * Sum and Prod combine with one Add/Mul instruction; Min and Max
 * combine with a comparison followed by a Mux.
 */
#include "pim/tensor.hpp"

#include <bit>

#include "common/error.hpp"
#include "pim/lowering.hpp"

namespace pypim
{

namespace
{

enum class ReduceKind { Sum, Prod, Min, Max };

/** res[0, n) <- combine(a[0, n), b[0, n)) on aligned registers. */
void
combine(ReduceKind kind, DType dt, const Tensor &res, const Tensor &a,
        const Tensor &b)
{
    switch (kind) {
      case ReduceKind::Sum:
        lowering::rtypeOp(ROp::Add, dt, res, a, &b);
        return;
      case ReduceKind::Prod:
        lowering::rtypeOp(ROp::Mul, dt, res, a, &b);
        return;
      case ReduceKind::Min:
      case ReduceKind::Max: {
        Tensor cmp = lowering::allocLikePattern(a, DType::Int32);
        lowering::rtypeOp(ROp::Lt, dt, cmp, a, &b);
        if (kind == ReduceKind::Min)
            lowering::rtypeOp(ROp::Mux, dt, res, a, &b, &cmp);
        else
            lowering::rtypeOp(ROp::Mux, dt, res, b, &a, &cmp);
        return;
      }
    }
}

uint32_t
reduceBits(const Tensor &t, ReduceKind kind)
{
    fatalIf(!t.valid(), "reduce: invalid tensor");
    fatalIf(t.size() == 0, "reduce: empty tensor");
    Device &dev = t.device();
    const uint32_t rows = dev.geometry().rows;
    const DType dt = t.dtype();

    Tensor acc = t.clone();  // canonical contiguous working copy

    // Inter-warp phase: fold the upper warps onto the lower half.
    while (acc.size() > rows) {
        const Allocation &a = acc.allocation();
        const uint32_t half = (a.warpCount + 1) / 2;
        const uint64_t lowLen = static_cast<uint64_t>(half) * rows;
        const uint64_t hiLen = acc.size() - lowLen;
        // tmp over the lower warps receives the upper elements.
        Tensor hi = acc.slice(lowLen, acc.size());
        Tensor lowPattern = acc.slice(0, hiLen);
        Tensor tmp = hi.materializeLike(lowPattern);
        // Fresh result register over the lower half.
        Tensor res = lowering::allocLikePattern(acc.slice(0, lowLen), dt);
        combine(kind, dt, res.slice(0, hiLen), acc.slice(0, hiLen), tmp);
        if (lowLen > hiLen) {
            Tensor carry = res.slice(hiLen, lowLen);
            lowering::rtypeOp(ROp::Copy, dt, carry,
                              acc.slice(hiLen, lowLen));
        }
        acc = res;
    }

    // Intra-warp phase.
    while (acc.size() > 1) {
        const uint64_t len = acc.size();
        const uint64_t half = (len + 1) / 2;
        const uint64_t hiLen = len - half;
        Tensor hi = acc.slice(half, len);
        Tensor tmp = hi.materializeLike(acc.slice(0, hiLen));
        Tensor res = lowering::allocLikePattern(acc.slice(0, half), dt);
        combine(kind, dt, res.slice(0, hiLen), acc.slice(0, hiLen), tmp);
        if (half > hiLen) {
            Tensor carry = res.slice(hiLen, half);
            lowering::rtypeOp(ROp::Copy, dt, carry,
                              acc.slice(hiLen, half));
        }
        acc = res;
    }

    const auto [warp, row] = acc.position(0);
    ReadInstr rd;
    rd.reg = static_cast<uint8_t>(acc.reg());
    rd.warp = warp;
    rd.row = row;
    return dev.driver().execute(rd);
}

template <typename T>
T
castResult(uint32_t bits)
{
    if constexpr (std::is_same_v<T, float>)
        return std::bit_cast<float>(bits);
    else
        return static_cast<T>(bits);
}

template <typename T>
void
checkDtype(const Tensor &t)
{
    if constexpr (std::is_same_v<T, float>) {
        fatalIf(t.dtype() != DType::Float32,
                "reduce: expected a float32 tensor");
    } else {
        fatalIf(t.dtype() != DType::Int32,
                "reduce: expected an int32 tensor");
    }
}

} // namespace

template <typename T>
T
Tensor::sum() const
{
    checkDtype<T>(*this);
    return castResult<T>(reduceBits(*this, ReduceKind::Sum));
}

template <typename T>
T
Tensor::prod() const
{
    checkDtype<T>(*this);
    return castResult<T>(reduceBits(*this, ReduceKind::Prod));
}

template <typename T>
T
Tensor::min() const
{
    checkDtype<T>(*this);
    return castResult<T>(reduceBits(*this, ReduceKind::Min));
}

template <typename T>
T
Tensor::max() const
{
    checkDtype<T>(*this);
    return castResult<T>(reduceBits(*this, ReduceKind::Max));
}

template float Tensor::sum<float>() const;
template int32_t Tensor::sum<int32_t>() const;
template float Tensor::prod<float>() const;
template int32_t Tensor::prod<int32_t>() const;
template float Tensor::min<float>() const;
template int32_t Tensor::min<int32_t>() const;
template float Tensor::max<float>() const;
template int32_t Tensor::max<int32_t>() const;

} // namespace pypim
