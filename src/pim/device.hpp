/**
 * @file
 * A PIM device: the bundle of simulator (standing in for the physical
 * chip), host driver and dynamic memory manager that the tensor
 * library programs against (paper Fig. 2, runtime dependencies).
 *
 * Since the multi-device refactor the "chip" is a SimulatorGroup
 * (sim/device_group.hpp): EngineConfig::devices shards the crossbar
 * space across N independent sub-device Simulators at H-tree group
 * boundaries, with boundary-crossing Moves as the only inter-device
 * traffic. One sub-device (the default) is the classic monolithic
 * simulator; results, readback and architectural statistics are
 * bit-identical at any device count (tests/test_multi_device.cpp).
 */
#ifndef PYPIM_PIM_DEVICE_HPP
#define PYPIM_PIM_DEVICE_HPP

#include <memory>
#include <string>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "driver/driver.hpp"
#include "pim/alloc.hpp"
#include "sim/checkpoint.hpp"
#include "sim/device_group.hpp"

namespace pypim
{

/** One logical digital PIM chip (simulated) plus its host software. */
class Device
{
  public:
    /**
     * Create a device with its own simulator instance(s).
     * @param geo memory geometry (validated)
     * @param mode driver arithmetic mode (paper Fig. 4)
     * @param ec simulator execution backend; the default honours the
     *           PYPIM_ENGINE / PYPIM_THREADS / PYPIM_PIPELINE /
     *           PYPIM_TRACE_CACHE / PYPIM_DEVICES / PYPIM_AFFINITY /
     *           PYPIM_XBAR_STORAGE environment knobs and falls back
     *           to one synchronous
     *           serial sub-device with the driver trace cache enabled
     *           (ec.traceCache is forwarded to the Driver)
     */
    explicit Device(const Geometry &geo,
                    Driver::Mode mode = Driver::Mode::Parallel,
                    const EngineConfig &ec = EngineConfig::fromEnv());

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /**
     * Process-wide default device (created on first use): 16 crossbars
     * of the Table III geometry — large enough for the examples, small
     * enough to simulate instantly.
     */
    static Device &defaultDevice();

    const Geometry &geometry() const { return geo_; }

    /** The sharded simulator fan-out the driver programs against. */
    SimulatorGroup &group() { return group_; }
    const SimulatorGroup &group() const { return group_; }

    /** Sub-devices sharding this logical device (1 = monolithic). */
    uint32_t deviceCount() const { return group_.devices(); }

    /**
     * Sub-device 0's simulator. With one sub-device (the default)
     * this is the whole chip, exactly as before the refactor. With
     * more, it owns only the first crossbar slice — but its mask
     * state and architectural statistics are still those of the whole
     * logical device (replicated by construction); use
     * group().crossbar(i) for state outside the first slice.
     */
    Simulator &simulator() { return group_.sub(0); }
    /** Simulator of sub-device @p d. */
    Simulator &simulator(uint32_t d) { return group_.sub(d); }

    Driver &driver() { return drv_; }
    MemoryManager &allocator() { return mm_; }

    /**
     * Push any micro-ops still batched in the driver to the simulator
     * and drain every sub-device's asynchronous pipeline (no-op when
     * the pipeline is off). Reads and stats queries synchronise
     * implicitly; call this before inspecting simulator state
     * directly.
     */
    void flush();

    /**
     * Simulator-side micro-op statistics (drains the pipeline, so the
     * counters cover every submitted batch). Replicated across
     * sub-devices, so one view is the logical device's truth —
     * deliberately read-only: mutating one replica would break the
     * invariant. Reset with clearStats().
     */
    const Stats &stats() const { return group_.stats(); }

    /** Reset the architectural counters on every sub-device. */
    void clearStats() { group_.clearStats(); }

    // --- checkpoint / restore / fault tolerance ----------------------

    /**
     * Write a crash-consistent checkpoint of the whole device to
     * @p path: quiesce at the drain contract (flush), take COW
     * snapshots of every owned crossbar per sub-device, and stream
     * the canonical image out (sim/serialize.hpp) together with the
     * allocator state and the driver's stream-cache signatures.
     * Also resets the recovery baseline — the journal restarts here.
     * Returns bytes written.
     */
    uint64_t checkpoint(const std::string &path);

    /**
     * Rebuild this device's full state from a checkpoint written by
     * ANY device of the same geometry — the sub-device count and
     * storage mode of the writer are free (the image is global-
     * coordinate and canonical). Clears sticky pipeline errors and
     * any terminal recovery error: a restored device is a healthy
     * device. Crossbar state, mask state and architectural Stats are
     * bit-identical to the checkpointed device's.
     */
    void restore(const std::string &path);

    /**
     * Fault-tolerance observability: faultsInjected (from the
     * PYPIM_FAULTS injectors), faultsDetected / recoveries (from the
     * retry-with-restore policy) and checkpointBytes. Host-side
     * counters — never part of the architectural stats().
     */
    Stats faultStats() const;

    /** The retry-with-restore sink between driver and simulator
     *  group (active only under PYPIM_VERIFY_STATE). */
    RecoverySink &recovery() { return recovery_; }

  private:
    Geometry geo_;
    SimulatorGroup group_;
    /** Between drv_ and group_: journals state-affecting calls and
     *  retries-with-restore on detected faults (sim/checkpoint.hpp).
     *  Declaration order matters — drv_ holds a reference to it. */
    RecoverySink recovery_;
    Driver drv_;
    MemoryManager mm_;
};

} // namespace pypim

#endif // PYPIM_PIM_DEVICE_HPP
