/**
 * @file
 * A PIM device: the bundle of simulator (standing in for the physical
 * chip), host driver and dynamic memory manager that the tensor
 * library programs against (paper Fig. 2, runtime dependencies).
 */
#ifndef PYPIM_PIM_DEVICE_HPP
#define PYPIM_PIM_DEVICE_HPP

#include <memory>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "driver/driver.hpp"
#include "pim/alloc.hpp"
#include "sim/simulator.hpp"

namespace pypim
{

/** One digital PIM chip (simulated) plus its host-side software. */
class Device
{
  public:
    /**
     * Create a device with its own simulator instance.
     * @param geo memory geometry (validated)
     * @param mode driver arithmetic mode (paper Fig. 4)
     * @param ec simulator execution backend; the default honours the
     *           PYPIM_ENGINE / PYPIM_THREADS / PYPIM_PIPELINE /
     *           PYPIM_TRACE_CACHE environment knobs and falls back to
     *           the synchronous serial engine with the driver trace
     *           cache enabled (ec.traceCache is forwarded to the
     *           Driver)
     */
    explicit Device(const Geometry &geo,
                    Driver::Mode mode = Driver::Mode::Parallel,
                    const EngineConfig &ec = EngineConfig::fromEnv());

    Device(const Device &) = delete;
    Device &operator=(const Device &) = delete;

    /**
     * Process-wide default device (created on first use): 16 crossbars
     * of the Table III geometry — large enough for the examples, small
     * enough to simulate instantly.
     */
    static Device &defaultDevice();

    const Geometry &geometry() const { return geo_; }
    Simulator &simulator() { return sim_; }
    Driver &driver() { return drv_; }
    MemoryManager &allocator() { return mm_; }

    /**
     * Push any micro-ops still batched in the driver to the simulator
     * and drain its asynchronous pipeline (no-op when the pipeline is
     * off). Reads and stats queries synchronise implicitly; call this
     * before inspecting simulator state directly.
     */
    void flush();

    /**
     * Simulator-side micro-op statistics (drains the pipeline, so the
     * counters cover every submitted batch).
     */
    const Stats &stats() const { return sim_.stats(); }
    Stats &stats() { return sim_.stats(); }

  private:
    Geometry geo_;
    Simulator sim_;
    Driver drv_;
    MemoryManager mm_;
};

} // namespace pypim

#endif // PYPIM_PIM_DEVICE_HPP
