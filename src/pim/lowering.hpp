/**
 * @file
 * Internal lowering engine of the tensor library: view-to-mask segment
 * decomposition, position alignment checks, and the move planner that
 * realises "automatic data movement between views" (paper §V-A).
 *
 * Lowering strategies for moving a view's elements onto a target
 * position pattern, fastest applicable first:
 *  1. identical positions               -> register Copy instructions
 *  2. same rows, constant warp distance -> one inter-warp move per row
 *  3. same warps, warp-uniform row map  -> warp-parallel intra-warp
 *                                          moves (one per row pair)
 *  4. same warps, non-uniform           -> per-warp intra-warp moves
 *  5. anything else                     -> host gather (read + write
 *                                          per element; the correct
 *                                          but slow fall-back)
 */
#ifndef PYPIM_PIM_LOWERING_HPP
#define PYPIM_PIM_LOWERING_HPP

#include <vector>

#include "pim/tensor.hpp"

namespace pypim::lowering
{

/** One broadcastable piece of a view: a warp range + a row mask. */
struct Segment
{
    Range warps;
    Range rows;
    uint64_t firstElement = 0;  //!< view element index of rows.start
};

/** Decompose a view into mask segments (warp groups with equal
 *  local row patterns). */
std::vector<Segment> segments(const Tensor &t);

/** True iff a and b occupy exactly the same threads element-wise. */
bool samePositions(const Tensor &a, const Tensor &b);

/**
 * Allocate a fresh tensor whose element i sits at exactly
 * @p pattern's element-i thread (same warps, same rows).
 */
Tensor allocLikePattern(const Tensor &pattern, DType dtype);

/**
 * Emit one R-type instruction per segment of @p out. All operands
 * must be position-aligned with @p out (panics otherwise).
 */
void rtypeOp(ROp op, DType dtype, const Tensor &out, const Tensor &a,
             const Tensor *b = nullptr, const Tensor *c = nullptr);

/** Move src's element values onto dst's threads (same length). */
void moveElements(const Tensor &src, const Tensor &dst);

/**
 * Emit inter-warp move instructions for an arbitrary source warp set
 * (compressed into arithmetic ranges and split to power-of-4 steps).
 */
void interWarpMoves(Device &dev, const std::vector<uint32_t> &srcWarps,
                    int64_t dist, uint32_t srcRow, uint32_t dstRow,
                    uint32_t srcReg, uint32_t dstReg);

} // namespace pypim::lowering

#endif // PYPIM_PIM_LOWERING_HPP
