#include "pim/profiler.hpp"

namespace pypim
{

Profiler::Profiler(Device &dev)
    : dev_(&dev),
      start_(dev.stats())
{
}

void
Profiler::reset()
{
    start_ = dev_->stats();
}

Stats
Profiler::delta() const
{
    return dev_->stats() - start_;
}

uint64_t
Profiler::cycles() const
{
    return delta().totalCycles();
}

uint64_t
Profiler::microOps() const
{
    return delta().totalOps();
}

double
Profiler::pimSeconds() const
{
    return static_cast<double>(cycles()) /
           static_cast<double>(dev_->geometry().clockHz);
}

} // namespace pypim
