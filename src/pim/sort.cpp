/**
 * @file
 * Bitonic sorting network over PIM tensors (paper §VI "Sorting"):
 * sorting expressed as a sequence of parallel compare-and-swap
 * operations [Batcher 1968] plus data movement between elements.
 *
 * Every substage (k, j) builds the exchanged partner tensor
 * (partner_i = work_{i XOR j}) with intra-warp vertical moves (j <
 * rows; warp-parallel) or distributed H-tree moves (j >= rows), then
 * performs the compare-and-swap as a handful of elementwise
 * instructions: one comparison, direction/lane masks derived from an
 * index tensor with bitwise ops, and three muxes. The movement is
 * thread-serial, which is exactly why sorting throughput sits orders
 * of magnitude below elementwise arithmetic in Fig. 13.
 */
#include "pim/tensor.hpp"

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "pim/lowering.hpp"

namespace pypim
{

namespace
{

/** partner_i = t_{i XOR j} for a canonical power-of-two tensor. */
Tensor
exchange(const Tensor &t, uint64_t j)
{
    Device &dev = t.device();
    const uint32_t rows = dev.geometry().rows;
    const uint64_t n = t.size();
    Tensor out = lowering::allocLikePattern(t, t.dtype());
    const Allocation &a = t.allocation();

    if (j < rows) {
        // Partners share a warp; the row mapping is identical in every
        // warp, so each row pair is one warp-parallel move.
        MoveInstr mv;
        mv.kind = MoveInstr::Kind::IntraWarp;
        mv.srcReg = static_cast<uint8_t>(t.reg());
        mv.dstReg = static_cast<uint8_t>(out.reg());
        mv.warps = Range(a.warpStart, a.warpStart + a.warpCount - 1, 1);
        const uint32_t lim =
            static_cast<uint32_t>(std::min<uint64_t>(rows, n));
        for (uint32_t r = 0; r < lim; ++r) {
            mv.srcRow = r ^ static_cast<uint32_t>(j);
            mv.dstRow = r;
            dev.driver().execute(mv);
        }
        return out;
    }

    // Partners sit jw warps apart: distributed H-tree moves, one pair
    // of (split) move instructions per row.
    const uint32_t jw = static_cast<uint32_t>(j / rows);
    std::vector<uint32_t> clearSet, setSet;
    for (uint32_t w = 0; w < a.warpCount; ++w) {
        if (w & jw)
            setSet.push_back(a.warpStart + w);
        else
            clearSet.push_back(a.warpStart + w);
    }
    for (uint32_t r = 0; r < rows; ++r) {
        lowering::interWarpMoves(dev, clearSet, jw, r, r, t.reg(),
                                 out.reg());
        lowering::interWarpMoves(dev, setSet,
                                 -static_cast<int64_t>(jw), r, r,
                                 t.reg(), out.reg());
    }
    return out;
}

} // namespace

void
Tensor::sort()
{
    fatalIf(!valid(), "sort: invalid tensor");
    if (len_ <= 1)
        return;
    fatalIf(!isPow2(len_),
            "sort: bitonic sorting requires a power-of-two length");
    Device &dev = device();

    Tensor work = clone();
    Tensor idx = Tensor::iota(len_, &dev).materializeLike(work);

    for (uint64_t k = 2; k <= len_; k <<= 1) {
        // Ascending block mask: bit k of the element index clear.
        Tensor asc =
            (idx & fullLike(idx, static_cast<int32_t>(k))) == 0;
        for (uint64_t j = k >> 1; j >= 1; j >>= 1) {
            Tensor left =
                (idx & fullLike(idx, static_cast<int32_t>(j))) == 0;
            Tensor partner = exchange(work, j);
            Tensor cmp = work < partner;
            // Keep the minimum iff this element is the left partner of
            // an ascending block (or the right partner of a descending
            // one).
            Tensor cond = asc == left;
            Tensor mn = where(cmp, work, partner);
            Tensor mx = where(cmp, partner, work);
            work = where(cond, mn, mx);
        }
    }
    assignFrom(work);
}

Tensor
Tensor::sorted() const
{
    Tensor out = clone();
    out.sort();
    return out;
}

} // namespace pypim
