/**
 * @file
 * PIM-optimised dynamic memory management (paper §V-A).
 *
 * Tensors are allocated at one register index across the rows of a
 * contiguous range of warps. Parallel arithmetic requires its operands
 * to live in the *same threads* (same warp range, same rows), so the
 * allocator supports a reference hint: "place this tensor on the same
 * warp range as that one" — the library then avoids the fall-back
 * alignment copies.
 */
#ifndef PYPIM_PIM_ALLOC_HPP
#define PYPIM_PIM_ALLOC_HPP

#include <cstdint>
#include <vector>

#include "common/config.hpp"

namespace pypim
{

/** One tensor's footprint: a register index over a warp range. */
struct Allocation
{
    uint32_t reg = 0;
    uint32_t warpStart = 0;
    uint32_t warpCount = 0;
    uint64_t elements = 0;

    bool
    sameWarpRange(const Allocation &o) const
    {
        return warpStart == o.warpStart && warpCount == o.warpCount;
    }
};

/** Register/warp-range allocator for PIM tensors. */
class MemoryManager
{
  public:
    /**
     * @p devices is the sub-device count of the owning logical device
     * (sim/device_group.hpp): the allocator is SHARD-AWARE, preferring
     * warp ranges that stay inside one sub-device's crossbar slice so
     * tensor traffic (and any later inter-warp moves between aligned
     * tensors) stays intra-device. Tensors wider than one slice
     * necessarily stripe across sub-devices.
     */
    explicit MemoryManager(const Geometry &geo, uint32_t devices = 1);

    /**
     * Allocate @p elements (one per thread). With a @p hint the
     * allocator first tries the hint's exact warp range (a different
     * register), so the new tensor is thread-aligned with it. Without
     * one, ranges fully inside a single sub-device slice are
     * preferred; crossing a slice boundary is the fall-back, not the
     * default.
     */
    Allocation alloc(uint64_t elements, const Allocation *hint = nullptr);

    /**
     * Allocate a register over the exact warp range [warpStart,
     * warpStart + warpCount); throws pypim::Error when no register is
     * free there.
     */
    Allocation allocAt(uint32_t warpStart, uint32_t warpCount,
                       uint64_t elements);

    /** Release an allocation. */
    void free(const Allocation &a);

    /**
     * Serialize the occupancy state (used bitmap + live/slot
     * counters) into an opaque blob for Device::checkpoint. The
     * geometry is NOT embedded — the checkpoint header carries it and
     * restore validates the match before importState is reached.
     */
    std::vector<uint8_t> exportState() const;
    /** Inverse of exportState; replaces the current occupancy. An
     *  empty blob resets to the all-free state. */
    void importState(const std::vector<uint8_t> &blob);

    /** Live allocations (leak checks in tests). */
    uint32_t liveAllocations() const { return live_; }
    /** Register-warp slots currently occupied. */
    uint64_t slotsInUse() const { return slotsInUse_; }
    /** Warps per sub-device slice (numCrossbars when monolithic). */
    uint32_t sliceWarps() const { return sliceWarps_; }

  private:
    bool rangeFree(uint32_t reg, uint32_t warpStart,
                   uint32_t warpCount) const;
    void markRange(uint32_t reg, uint32_t warpStart, uint32_t warpCount,
                   bool used);

    const Geometry *geo_;
    uint32_t sliceWarps_;
    /** used_[reg][warp] == true iff occupied. */
    std::vector<std::vector<bool>> used_;
    uint32_t live_ = 0;
    uint64_t slotsInUse_ = 0;
};

} // namespace pypim

#endif // PYPIM_PIM_ALLOC_HPP
