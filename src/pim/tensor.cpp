#include "pim/tensor.hpp"

#include <bit>
#include <sstream>

#include "common/bitops.hpp"
#include "common/error.hpp"
#include "pim/lowering.hpp"

namespace pypim
{

Device &
Tensor::resolve(Device *dev)
{
    return dev ? *dev : Device::defaultDevice();
}

Tensor
Tensor::allocate(uint64_t n, DType dtype, Device &dev,
                 const Allocation *hint)
{
    const Allocation a = dev.allocator().alloc(n, hint);
    Tensor t;
    t.st_ = std::make_shared<TensorStorage>(dev, a, dtype);
    t.viewStart_ = 0;
    t.viewStep_ = 1;
    t.len_ = n;
    return t;
}

Tensor
Tensor::wrap(std::shared_ptr<TensorStorage> st, uint64_t start,
             uint64_t step, uint64_t len)
{
    Tensor t;
    t.st_ = std::move(st);
    t.viewStart_ = start;
    t.viewStep_ = step;
    t.len_ = len;
    return t;
}

// --- factories ----------------------------------------------------------

namespace
{

/** Broadcast one constant into every segment of @p t. */
void
writeConstant(Tensor &t, uint32_t bits)
{
    WriteInstr w;
    w.reg = static_cast<uint8_t>(t.reg());
    w.value = bits;
    for (const auto &seg : lowering::segments(t)) {
        w.warps = seg.warps;
        w.rows = seg.rows;
        t.device().driver().execute(w);
    }
}

} // namespace

Tensor
Tensor::zeros(uint64_t n, DType dtype, Device *dev)
{
    Tensor t = allocate(n, dtype, resolve(dev), nullptr);
    writeConstant(t, 0);
    return t;
}

Tensor
Tensor::ones(uint64_t n, DType dtype, Device *dev)
{
    if (dtype == DType::Float32)
        return full(n, 1.0f, dev);
    return full(n, int32_t{1}, dev);
}

Tensor
Tensor::full(uint64_t n, float value, Device *dev)
{
    Tensor t = allocate(n, DType::Float32, resolve(dev), nullptr);
    writeConstant(t, std::bit_cast<uint32_t>(value));
    return t;
}

Tensor
Tensor::full(uint64_t n, int32_t value, Device *dev)
{
    Tensor t = allocate(n, DType::Int32, resolve(dev), nullptr);
    writeConstant(t, static_cast<uint32_t>(value));
    return t;
}

Tensor
Tensor::fullLike(const Tensor &like, float value)
{
    fatalIf(!like.valid(), "fullLike: invalid tensor");
    fatalIf(like.dtype() != DType::Float32,
            "fullLike: float constant on a non-float tensor");
    Tensor t = lowering::allocLikePattern(like, DType::Float32);
    writeConstant(t, std::bit_cast<uint32_t>(value));
    return t;
}

Tensor
Tensor::fullLike(const Tensor &like, int32_t value)
{
    fatalIf(!like.valid(), "fullLike: invalid tensor");
    fatalIf(like.dtype() != DType::Int32,
            "fullLike: int constant on a non-int tensor");
    Tensor t = lowering::allocLikePattern(like, DType::Int32);
    writeConstant(t, static_cast<uint32_t>(value));
    return t;
}

Tensor
Tensor::fromVector(const std::vector<float> &v, Device *dev)
{
    Tensor t = allocate(v.size(), DType::Float32, resolve(dev), nullptr);
    t.setVector(v);
    return t;
}

Tensor
Tensor::fromVector(const std::vector<int32_t> &v, Device *dev)
{
    Tensor t = allocate(v.size(), DType::Int32, resolve(dev), nullptr);
    t.setVector(v);
    return t;
}

Tensor
Tensor::iota(uint64_t n, Device *dev)
{
    Device &d = resolve(dev);
    const uint32_t rows = d.geometry().rows;
    Tensor t = allocate(n, DType::Int32, d, nullptr);
    // Element index = warp base + row index, built from masked
    // constant writes: one write per row (broadcast over all warps,
    // value = row) plus one write per warp (adding the base would need
    // arithmetic, so instead each warp's rows are written directly
    // when the tensor spans several warps).
    const Allocation &a = t.allocation();
    WriteInstr w;
    w.reg = static_cast<uint8_t>(t.reg());
    if (a.warpCount == 1) {
        for (uint64_t i = 0; i < n; ++i) {
            w.value = static_cast<uint32_t>(i);
            w.warps = Range::single(a.warpStart);
            w.rows = Range::single(static_cast<uint32_t>(i));
            d.driver().execute(w);
        }
        return t;
    }
    // Multi-warp: write the row index broadcast across all warps, then
    // add the per-warp base via a base tensor and one Add instruction.
    for (uint32_t r = 0; r < rows; ++r) {
        if (r >= n)
            break;
        const uint32_t lastWarp = a.warpStart +
            static_cast<uint32_t>((n - 1 - r) / rows);
        w.value = r;
        w.warps = Range(a.warpStart, lastWarp, 1);
        w.rows = Range::single(r);
        d.driver().execute(w);
    }
    Tensor base = lowering::allocLikePattern(t, DType::Int32);
    WriteInstr wb;
    wb.reg = static_cast<uint8_t>(base.reg());
    for (uint32_t k = 0; k < a.warpCount; ++k) {
        const uint64_t first = static_cast<uint64_t>(k) * rows;
        if (first >= n)
            break;
        const uint32_t lastRow = static_cast<uint32_t>(
            std::min<uint64_t>(rows, n - first) - 1);
        wb.value = static_cast<uint32_t>(first);
        wb.warps = Range::single(a.warpStart + k);
        wb.rows = Range(0, lastRow, 1);
        d.driver().execute(wb);
    }
    Tensor out = lowering::allocLikePattern(t, DType::Int32);
    lowering::rtypeOp(ROp::Add, DType::Int32, out, t, &base);
    return out;
}

// --- metadata -----------------------------------------------------------

DType
Tensor::dtype() const
{
    fatalIf(!valid(), "dtype: invalid tensor");
    return st_->dtype;
}

Device &
Tensor::device() const
{
    fatalIf(!valid(), "device: invalid tensor");
    return *st_->dev;
}

bool
Tensor::isView() const
{
    if (!valid())
        return false;
    return viewStart_ != 0 || viewStep_ != 1 ||
           len_ != st_->alloc.elements;
}

const Allocation &
Tensor::allocation() const
{
    fatalIf(!valid(), "allocation: invalid tensor");
    return st_->alloc;
}

uint32_t
Tensor::reg() const
{
    return allocation().reg;
}

std::pair<uint32_t, uint32_t>
Tensor::position(uint64_t i) const
{
    fatalIf(i >= len_, "position: index out of range");
    const uint32_t rows = device().geometry().rows;
    const uint64_t s = storageRow(i);
    return {allocation().warpStart + static_cast<uint32_t>(s / rows),
            static_cast<uint32_t>(s % rows)};
}

uint64_t
Tensor::absoluteRow(uint64_t i) const
{
    const uint32_t rows = device().geometry().rows;
    return static_cast<uint64_t>(allocation().warpStart) * rows +
           storageRow(i);
}

// --- views --------------------------------------------------------------

Tensor
Tensor::slice(uint64_t start, uint64_t stop, uint64_t step) const
{
    fatalIf(!valid(), "slice: invalid tensor");
    fatalIf(step == 0, "slice: step must be >= 1");
    fatalIf(start > len_ || stop > len_,
            "slice: bounds exceed tensor size");
    fatalIf(stop <= start, "slice: empty slices are not supported");
    const uint64_t n = (stop - start + step - 1) / step;
    return wrap(st_, viewStart_ + start * viewStep_, viewStep_ * step, n);
}

Tensor
Tensor::every(uint64_t step, uint64_t offset) const
{
    fatalIf(!valid(), "every: invalid tensor");
    fatalIf(offset >= len_, "every: offset exceeds tensor size");
    return slice(offset, len_, step);
}

// --- data movement --------------------------------------------------------

Tensor
Tensor::clone() const
{
    fatalIf(!valid(), "clone: invalid tensor");
    Device &d = device();
    Tensor out = allocate(len_, dtype(), d, &allocation());
    lowering::moveElements(*this, out);
    return out;
}

Tensor
Tensor::materializeLike(const Tensor &pattern) const
{
    fatalIf(!valid() || !pattern.valid(), "materializeLike: invalid");
    fatalIf(pattern.size() != len_,
            "materializeLike: length mismatch");
    Tensor out = lowering::allocLikePattern(pattern, dtype());
    lowering::moveElements(*this, out);
    return out;
}

void
Tensor::assignFrom(const Tensor &src)
{
    fatalIf(!valid() || !src.valid(), "assignFrom: invalid tensor");
    fatalIf(src.size() != len_, "assignFrom: length mismatch");
    fatalIf(src.dtype() != dtype(), "assignFrom: dtype mismatch");
    lowering::moveElements(src, *this);
}

std::string
Tensor::toString(uint64_t maxElems) const
{
    std::ostringstream os;
    os << (isView() ? "TensorView" : "Tensor") << "(shape=(" << len_
       << ",), dtype=" << (valid() ? dtypeName(dtype()) : "none") << "):\n[";
    const uint64_t n = std::min(len_, maxElems);
    for (uint64_t i = 0; i < n; ++i) {
        if (i)
            os << ", ";
        if (dtype() == DType::Float32)
            os << getF(i);
        else
            os << getI(i);
    }
    if (n < len_)
        os << ", ...";
    os << "]";
    return os.str();
}

} // namespace pypim
