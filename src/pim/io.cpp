/**
 * @file
 * Host I/O for tensors: element get/set and bulk vector transfer via
 * read/write instructions (the standard memory interface retained by
 * the PIM architecture, paper §III-C).
 *
 * Host readback is a synchronisation point of the asynchronous
 * execution pipeline: every read funnels through the driver into
 * OperationSink::performRead, which drains all submitted batches
 * before touching state, so readback always observes the full
 * submitted stream. Writes stream through submitBatch like any other
 * instruction.
 *
 * Vector transfers take the bulk block-transfer path
 * (Driver::readBulk/writeBulk over the crossbars' 64x64 bit-transpose
 * gather/scatter kernels, sim/bulk_io.hpp): ONE pipeline drain per
 * transfer instead of one per element, with values and architectural
 * Stats bit-identical to the element loop kept below as the fallback
 * oracle (PYPIM_BULK_IO=0, or a sink without bulk support).
 */
#include "pim/tensor.hpp"

#include <bit>

#include "common/error.hpp"

namespace pypim
{

namespace
{

uint32_t
readBits(const Tensor &t, uint64_t i)
{
    const auto [warp, row] = t.position(i);
    ReadInstr rd;
    rd.reg = static_cast<uint8_t>(t.reg());
    rd.warp = warp;
    rd.row = row;
    return t.device().driver().execute(rd);
}

void
writeBits(Tensor &t, uint64_t i, uint32_t bits)
{
    const auto [warp, row] = t.position(i);
    WriteInstr w;
    w.reg = static_cast<uint8_t>(t.reg());
    w.value = bits;
    w.warps = Range::single(warp);
    w.rows = Range::single(row);
    t.device().driver().execute(w);
}

/**
 * Whole-view readback into out[0..size): bulk path first, element
 * loop when the driver declines (knob off, masks unknown, or a sink
 * without bulk support).
 */
void
readVector(const Tensor &t, uint32_t *out)
{
    if (t.size() == 0)
        return;
    Driver &drv = t.device().driver();
    if (drv.readBulk(static_cast<uint8_t>(t.reg()),
                     t.allocation().warpStart, t.viewStart(),
                     t.viewStep(), t.size(), out))
        return;
    for (uint64_t i = 0; i < t.size(); ++i)
        out[i] = readBits(t, i);
}

/** Whole-view upload from values[0..size) (never falls back: the
 *  driver emits the canonical run stream itself when bulk is off). */
void
writeVector(Tensor &t, const uint32_t *values)
{
    if (t.size() == 0)
        return;
    t.device().driver().writeBulk(static_cast<uint8_t>(t.reg()),
                                  t.allocation().warpStart,
                                  t.viewStart(), t.viewStep(),
                                  t.size(), values);
}

} // namespace

float
Tensor::getF(uint64_t i) const
{
    fatalIf(!valid(), "getF: invalid tensor");
    fatalIf(dtype() != DType::Float32, "getF: tensor is not float32");
    return std::bit_cast<float>(readBits(*this, i));
}

int32_t
Tensor::getI(uint64_t i) const
{
    fatalIf(!valid(), "getI: invalid tensor");
    fatalIf(dtype() != DType::Int32, "getI: tensor is not int32");
    return static_cast<int32_t>(readBits(*this, i));
}

void
Tensor::set(uint64_t i, float value)
{
    fatalIf(!valid(), "set: invalid tensor");
    fatalIf(dtype() != DType::Float32, "set: tensor is not float32");
    writeBits(*this, i, std::bit_cast<uint32_t>(value));
}

void
Tensor::set(uint64_t i, int32_t value)
{
    fatalIf(!valid(), "set: invalid tensor");
    fatalIf(dtype() != DType::Int32, "set: tensor is not int32");
    writeBits(*this, i, static_cast<uint32_t>(value));
}

std::vector<float>
Tensor::toFloatVector() const
{
    fatalIf(!valid(), "toFloatVector: invalid tensor");
    fatalIf(dtype() != DType::Float32,
            "toFloatVector: tensor is not float32");
    std::vector<uint32_t> bits(len_);
    readVector(*this, bits.data());
    std::vector<float> out(len_);
    for (uint64_t i = 0; i < len_; ++i)
        out[i] = std::bit_cast<float>(bits[i]);
    return out;
}

std::vector<int32_t>
Tensor::toIntVector() const
{
    fatalIf(!valid(), "toIntVector: invalid tensor");
    fatalIf(dtype() != DType::Int32, "toIntVector: tensor is not int32");
    std::vector<uint32_t> bits(len_);
    readVector(*this, bits.data());
    std::vector<int32_t> out(len_);
    for (uint64_t i = 0; i < len_; ++i)
        out[i] = static_cast<int32_t>(bits[i]);
    return out;
}

void
Tensor::setVector(const std::vector<float> &v)
{
    fatalIf(!valid(), "setVector: invalid tensor");
    fatalIf(dtype() != DType::Float32,
            "setVector: tensor is not float32");
    fatalIf(v.size() != len_, "setVector: length mismatch");
    std::vector<uint32_t> bits(len_);
    for (uint64_t i = 0; i < len_; ++i)
        bits[i] = std::bit_cast<uint32_t>(v[i]);
    writeVector(*this, bits.data());
}

void
Tensor::setVector(const std::vector<int32_t> &v)
{
    fatalIf(!valid(), "setVector: invalid tensor");
    fatalIf(dtype() != DType::Int32, "setVector: tensor is not int32");
    fatalIf(v.size() != len_, "setVector: length mismatch");
    std::vector<uint32_t> bits(len_);
    for (uint64_t i = 0; i < len_; ++i)
        bits[i] = static_cast<uint32_t>(v[i]);
    writeVector(*this, bits.data());
}

} // namespace pypim
