#include "pim/device.hpp"

namespace pypim
{

Device::Device(const Geometry &geo, Driver::Mode mode,
               const EngineConfig &ec)
    : geo_(geo),
      group_(geo_, ec),
      drv_(group_, geo_, mode),
      mm_(geo_, group_.devices())
{
    drv_.setTraceCacheEnabled(ec.traceCache);
    drv_.setBulkIoEnabled(ec.bulkIo);
}

void
Device::flush()
{
    drv_.builder().flush();
    group_.flush();
}

Device &
Device::defaultDevice()
{
    static const Geometry g = [] {
        Geometry x;  // Table III crossbar geometry
        x.numCrossbars = 16;
        return x;
    }();
    static Device dev(g);
    return dev;
}

} // namespace pypim
