#include "pim/device.hpp"

#include "sim/serialize.hpp"

namespace pypim
{

Device::Device(const Geometry &geo, Driver::Mode mode,
               const EngineConfig &ec)
    : geo_(geo),
      group_(geo_, ec),
      recovery_(group_, ec),
      drv_(recovery_, geo_, mode),
      mm_(geo_, group_.devices())
{
    drv_.setTraceCacheEnabled(ec.traceCache);
    drv_.setBulkIoEnabled(ec.bulkIo);
}

void
Device::flush()
{
    drv_.builder().flush();
    // Through the recovery seam, not straight to the group: the drain
    // is a detection point, and a corruption surfacing here must take
    // the retry-with-restore path like any other guarded call.
    recovery_.flush();
}

uint64_t
Device::checkpoint(const std::string &path)
{
    // Quiesce at the drain contract: pending driver batches land,
    // every pipeline drains (and any sticky error rethrows HERE, not
    // into the checkpoint — a checkpoint of a faulted device would be
    // a checkpoint of corruption).
    flush();
    CheckpointImage img = buildGroupImage(group_);
    img.allocState = mm_.exportState();
    img.driverCache = drv_.exportStreamCache();
    ByteWriter w;
    writeStats(w, drv_.stats());
    img.driverStats = w.take();
    const uint64_t bytes = saveCheckpoint(img, path);
    recovery_.recoveryStats().checkpointBytes += bytes;
    // The journal restarts at this durable point: recovery never
    // replays further back than the newest checkpoint.
    recovery_.rebaseline();
    return bytes;
}

void
Device::restore(const std::string &path)
{
    const CheckpointImage img = loadCheckpoint(path);
    restoreGroupImage(group_, img);
    mm_.importState(img.allocState);
    drv_.importStreamCache(img.driverCache);
    if (img.driverStats.empty()) {
        drv_.stats().clear();
    } else {
        ByteReader r(img.driverStats.data(), img.driverStats.size());
        drv_.stats() = readStats(r);
    }
    // Pending batched micro-ops were translated against the timeline
    // this restore discards — drop them (a flush would submit them,
    // and could rethrow the very sticky error restore is clearing).
    drv_.builder().discardBatch();
    // The chip's mask state changed under the builder: force the next
    // mask op to re-emit instead of trusting a stale dedup cache.
    drv_.builder().resetMaskState();
    recovery_.rebaseline();
}

Stats
Device::faultStats() const
{
    Stats s = recovery_.recoveryStats();
    s.faultsInjected = group_.faultsInjected();
    // Shard-transport wire counters ride along (zero under inproc):
    // one query surfaces recovery, fault and transport observability.
    group_.foldWireStats(s);
    return s;
}

Device &
Device::defaultDevice()
{
    static const Geometry g = [] {
        Geometry x;  // Table III crossbar geometry
        x.numCrossbars = 16;
        return x;
    }();
    static Device dev(g);
    return dev;
}

} // namespace pypim
