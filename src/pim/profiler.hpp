/**
 * @file
 * Profiling window over a device's micro-op statistics — the
 * counterpart of the paper's `with pim.Profiler():` context (artifact
 * §F): captures the simulator counters at construction and reports the
 * delta, including the derived PIM execution time at the configured
 * clock. Every stats query drains the device's asynchronous pipeline
 * (Simulator::stats), so windows always cover whole submitted batches.
 */
#ifndef PYPIM_PIM_PROFILER_HPP
#define PYPIM_PIM_PROFILER_HPP

#include "common/stats.hpp"
#include "pim/device.hpp"

namespace pypim
{

/** Captures device statistics over a scope. */
class Profiler
{
  public:
    explicit Profiler(Device &dev);

    /** Restart the window. */
    void reset();

    /** Counters accumulated since construction/reset. */
    Stats delta() const;

    /** PIM cycles consumed in the window. */
    uint64_t cycles() const;
    /** Micro-operations issued in the window. */
    uint64_t microOps() const;
    /** PIM wall-clock time of the window at the device clock. */
    double pimSeconds() const;

  private:
    Device *dev_;
    Stats start_;
};

} // namespace pypim

#endif // PYPIM_PIM_PROFILER_HPP
