/**
 * @file
 * The PyPIM tensor API (paper §V-A) — a C++ stand-in for the paper's
 * Python development library with the same semantics:
 *
 *  - factory functions (zeros/full/fromVector/iota),
 *  - elementwise operator overloading lowered to R-type instructions
 *    executed in parallel across all threads holding the tensor,
 *  - slicing views (x.every(2) == x[::2]) that lower to row masks and
 *    automatic move operations when operands are not aligned,
 *  - logarithmic-depth reductions (sum/prod/min/max),
 *  - bitonic sorting,
 *  - host I/O through read/write instructions.
 *
 * Tensors are reference handles (like numpy arrays): copies share
 * storage; slicing shares storage. Storage is freed when the last
 * handle dies. Elementwise results are fresh tensors allocated
 * thread-aligned with their left operand via the allocator's
 * reference hint.
 */
#ifndef PYPIM_PIM_TENSOR_HPP
#define PYPIM_PIM_TENSOR_HPP

#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "isa/instruction.hpp"
#include "pim/device.hpp"

namespace pypim
{

/** Reference-counted tensor storage; frees its allocation on death. */
struct TensorStorage
{
    TensorStorage(Device &d, const Allocation &a, DType t)
        : dev(&d), alloc(a), dtype(t) {}
    ~TensorStorage() { dev->allocator().free(alloc); }
    TensorStorage(const TensorStorage &) = delete;
    TensorStorage &operator=(const TensorStorage &) = delete;

    Device *dev;
    Allocation alloc;
    DType dtype;
};

/**
 * A 1-D PIM tensor (possibly a strided view of shared storage).
 * Element i lives at storage row viewStart + i*viewStep; storage row s
 * maps to thread (warpStart + s/rows, s%rows).
 */
class Tensor
{
  public:
    Tensor() = default;

    // --- factories --------------------------------------------------

    static Tensor zeros(uint64_t n, DType dtype = DType::Float32,
                        Device *dev = nullptr);
    static Tensor ones(uint64_t n, DType dtype = DType::Float32,
                       Device *dev = nullptr);
    static Tensor full(uint64_t n, float value, Device *dev = nullptr);
    static Tensor full(uint64_t n, int32_t value, Device *dev = nullptr);
    static Tensor fromVector(const std::vector<float> &v,
                             Device *dev = nullptr);
    static Tensor fromVector(const std::vector<int32_t> &v,
                             Device *dev = nullptr);
    /** Int32 tensor holding 0..n-1 (built from masked constant
     *  writes: rows + warps instructions, not n). */
    static Tensor iota(uint64_t n, Device *dev = nullptr);
    /** Constant tensor thread-aligned with @p like. */
    static Tensor fullLike(const Tensor &like, float value);
    static Tensor fullLike(const Tensor &like, int32_t value);

    // --- metadata ---------------------------------------------------

    bool valid() const { return static_cast<bool>(st_); }
    uint64_t size() const { return len_; }
    DType dtype() const;
    Device &device() const;
    /** True iff this handle is a strided/offset view of its storage. */
    bool isView() const;

    // --- views (paper §V-A "Views and Data Movement") -----------------

    /** Python-style x[start:stop:step] with exclusive stop, step>=1. */
    Tensor slice(uint64_t start, uint64_t stop, uint64_t step = 1) const;
    /** Python-style x[offset::step]. */
    Tensor every(uint64_t step, uint64_t offset = 0) const;

    // --- host I/O ---------------------------------------------------

    float getF(uint64_t i) const;
    int32_t getI(uint64_t i) const;
    void set(uint64_t i, float value);
    void set(uint64_t i, int32_t value);
    std::vector<float> toFloatVector() const;
    std::vector<int32_t> toIntVector() const;
    /** Overwrite all elements from @p v (v.size() == size()), in one
     *  bulk transfer (sim/bulk_io.hpp) — one pipeline drain instead of
     *  one per element; equal-value runs coalesce into masked Range
     *  writes even on the element-wise fallback path. */
    void setVector(const std::vector<float> &v);
    void setVector(const std::vector<int32_t> &v);

    // --- reductions (logarithmic depth, paper §V-A) --------------------

    /** Sum of all elements (T must match the dtype). */
    template <typename T = float> T sum() const;
    /** Product of all elements. */
    template <typename T = float> T prod() const;
    /** Minimum / maximum element. */
    template <typename T = float> T min() const;
    template <typename T = float> T max() const;

    // --- sorting (bitonic network; power-of-two length) ----------------

    /** Sort ascending in place (views are sorted through). */
    void sort();
    /** Sorted copy. */
    Tensor sorted() const;

    // --- data movement ------------------------------------------------

    /** Contiguous (canonical) copy of this view. */
    Tensor clone() const;
    /** Copy of this view's values placed at @p pattern's threads. */
    Tensor materializeLike(const Tensor &pattern) const;
    /** Overwrite this view's elements with @p src's (same length). */
    void assignFrom(const Tensor &src);

    // --- advanced / internal (used by the lowering engine) -------------

    const Allocation &allocation() const;
    uint32_t reg() const;
    uint64_t viewStart() const { return viewStart_; }
    uint64_t viewStep() const { return viewStep_; }
    /** Storage row of element i. */
    uint64_t
    storageRow(uint64_t i) const
    {
        return viewStart_ + i * viewStep_;
    }
    /** Absolute (warp, row) of element i. */
    std::pair<uint32_t, uint32_t> position(uint64_t i) const;
    /** Absolute storage row (across the whole memory) of element i. */
    uint64_t absoluteRow(uint64_t i) const;
    const std::shared_ptr<TensorStorage> &storage() const { return st_; }

    static Tensor wrap(std::shared_ptr<TensorStorage> st,
                       uint64_t start, uint64_t step, uint64_t len);

    std::string toString(uint64_t maxElems = 16) const;

  private:
    static Device &resolve(Device *dev);
    static Tensor allocate(uint64_t n, DType dtype, Device &dev,
                           const Allocation *hint);

    std::shared_ptr<TensorStorage> st_;
    uint64_t viewStart_ = 0;
    uint64_t viewStep_ = 1;
    uint64_t len_ = 0;
};

// --- elementwise operations (paper Fig. 2 / Fig. 12 style) -------------

Tensor operator+(const Tensor &a, const Tensor &b);
Tensor operator-(const Tensor &a, const Tensor &b);
Tensor operator*(const Tensor &a, const Tensor &b);
Tensor operator/(const Tensor &a, const Tensor &b);
Tensor operator%(const Tensor &a, const Tensor &b);
Tensor operator-(const Tensor &a);  //!< negation

Tensor operator<(const Tensor &a, const Tensor &b);
Tensor operator<=(const Tensor &a, const Tensor &b);
Tensor operator>(const Tensor &a, const Tensor &b);
Tensor operator>=(const Tensor &a, const Tensor &b);
Tensor operator==(const Tensor &a, const Tensor &b);
Tensor operator!=(const Tensor &a, const Tensor &b);

Tensor operator&(const Tensor &a, const Tensor &b);
Tensor operator|(const Tensor &a, const Tensor &b);
Tensor operator^(const Tensor &a, const Tensor &b);
Tensor operator~(const Tensor &a);

// Scalar broadcasts (the scalar type must match the dtype).
Tensor operator+(const Tensor &a, float s);
Tensor operator+(float s, const Tensor &a);
Tensor operator+(const Tensor &a, int32_t s);
Tensor operator-(const Tensor &a, float s);
Tensor operator-(float s, const Tensor &a);
Tensor operator-(const Tensor &a, int32_t s);
Tensor operator*(const Tensor &a, float s);
Tensor operator*(float s, const Tensor &a);
Tensor operator*(const Tensor &a, int32_t s);
Tensor operator/(const Tensor &a, float s);
Tensor operator/(float s, const Tensor &a);
Tensor operator<(const Tensor &a, float s);
Tensor operator>(const Tensor &a, float s);
Tensor operator<=(const Tensor &a, float s);
Tensor operator>=(const Tensor &a, float s);
Tensor operator==(const Tensor &a, float s);
Tensor operator==(const Tensor &a, int32_t s);

/** rd = cond ? a : b, per element (cond is an Int32 0/1 tensor). */
Tensor where(const Tensor &cond, const Tensor &a, const Tensor &b);
Tensor abs(const Tensor &a);
Tensor sign(const Tensor &a);
/** 1 where the element is (+-)0, else 0 (Table II "Zero"). */
Tensor isZero(const Tensor &a);
Tensor minimum(const Tensor &a, const Tensor &b);
Tensor maximum(const Tensor &a, const Tensor &b);

} // namespace pypim

#endif // PYPIM_PIM_TENSOR_HPP
