#include "theory/model.hpp"

#include "common/bitops.hpp"
#include "driver/driver.hpp"
#include "sim/sink.hpp"
#include "uarch/microop.hpp"

namespace pypim::theory
{

namespace
{

/** Sink classifying logic gates/inits without executing anything. */
class GateCountSink : public OperationSink
{
  public:
    void
    performBatch(const Word *ops, size_t n) override
    {
        for (size_t i = 0; i < n; ++i) {
            const OpType t = enc::peekType(ops[i]);
            if (t != OpType::LogicH && t != OpType::LogicV)
                continue;
            const MicroOp op = MicroOp::decode(ops[i]);
            if (op.gate == Gate::Nor || op.gate == Gate::Not)
                ++gates;
            else
                ++inits;
        }
    }

    uint32_t performRead(Word op) override
    {
        perform(op);
        return 0;
    }

    uint64_t gates = 0;
    uint64_t inits = 0;
};

} // namespace

uint64_t
theoreticalCycles(const Stats &s, const Geometry &geo)
{
    const uint64_t gates = s.logicGates;
    const uint64_t amortisedInits = divCeil(gates, geo.partitions);
    const uint64_t moves =
        s.cycleCount[static_cast<size_t>(OpClass::Move)];
    const uint64_t io =
        s.cycleCount[static_cast<size_t>(OpClass::Read)] +
        s.cycleCount[static_cast<size_t>(OpClass::Write)];
    return gates + amortisedInits + moves + io;
}

uint64_t
conventionCycles(const Stats &s, const Geometry &geo)
{
    (void)geo;
    const uint64_t moves =
        s.cycleCount[static_cast<size_t>(OpClass::Move)];
    const uint64_t io =
        s.cycleCount[static_cast<size_t>(OpClass::Read)] +
        s.cycleCount[static_cast<size_t>(OpClass::Write)];
    return s.logicGates + s.logicInits + moves + io;
}

uint64_t
instructionCycles(const Geometry &geo, bool parallelMode, ROp op,
                  DType dtype)
{
    GateCountSink sink;
    Driver drv(sink, geo,
               parallelMode ? Driver::Mode::Parallel
                            : Driver::Mode::Serial);
    RTypeInstr in;
    in.op = op;
    in.dtype = dtype;
    in.rd = 3;
    in.ra = 0;
    in.rb = 1;
    in.rc = 2;
    in.warps = Range::all(geo.numCrossbars);
    in.rows = Range::all(geo.rows);
    drv.execute(in);
    return sink.gates + divCeil(sink.gates, geo.partitions);
}

double
throughput(uint64_t latencyCycles, uint64_t elementOps,
           const Geometry &deployment)
{
    if (latencyCycles == 0)
        return 0.0;
    return static_cast<double>(elementOps) *
           static_cast<double>(deployment.clockHz) /
           static_cast<double>(latencyCycles);
}

} // namespace pypim::theory
