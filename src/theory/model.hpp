/**
 * @file
 * Theoretical PIM cost model — the "Theoretical PIM" series of the
 * paper's Figure 13.
 *
 * The paper compares the measured micro-op counts against "the
 * theoretical lower-bound required based on previous works (e.g.,
 * AritPIM)". We use the equivalent algorithm-level bound, derived
 * mechanically from the executed stream itself:
 *
 *    theoretical cycles =
 *        logic gates (every NOR/NOT is one mandatory cycle)
 *      + ceil(gates / N)   (every gate output must be initialised and
 *                           an INIT micro-op can prime at most N cells
 *                           — one per partition — per cycle)
 *      + move cycles       (inherent data movement)
 *      + read/write cycles (inherent host I/O)
 *
 * i.e. the cycles a perfectly-scheduled controller would need for the
 * same gate-level algorithm with ideally amortised initialisation and
 * zero mask/bookkeeping overhead. The gap "measured / theoretical - 1"
 * therefore isolates exactly the integration overhead that the paper
 * reports as 5% mean / 16% worst-case.
 *
 * The model also provides the host-driver throughput bound used for
 * the third series of Fig. 13 (artifact appendix E): the rate at which
 * the driver can generate micro-ops, measured against the chip's
 * consumption rate of one op per cycle at clockHz.
 */
#ifndef PYPIM_THEORY_MODEL_HPP
#define PYPIM_THEORY_MODEL_HPP

#include "common/config.hpp"
#include "common/stats.hpp"
#include "isa/instruction.hpp"

namespace pypim
{

class Driver;

namespace theory
{

/** Theoretical minimum cycles for the stream summarised by @p s. */
uint64_t theoreticalCycles(const Stats &s, const Geometry &geo);

/**
 * Algorithm-level cycles under the AritPIM counting convention: every
 * gate AND every initialisation of the algorithm costs one cycle
 * (this is how the paper's reference lower bounds count), but mask
 * and bookkeeping micro-ops are excluded. The gap of the measured
 * stream against THIS number is the integration overhead the paper
 * reports as 5% mean / 16% worst-case.
 */
uint64_t conventionCycles(const Stats &s, const Geometry &geo);

/**
 * Theoretical minimum cycles for one element-parallel R-type
 * instruction (executes the driver against a counting sink; no
 * simulation state is touched).
 */
uint64_t instructionCycles(const Geometry &geo, bool parallelMode,
                           ROp op, DType dtype);

/**
 * Throughput in element-operations per second via the paper's Eq. (1):
 * parallelism / latency * frequency, with parallelism = the number of
 * rows of the (deployment-scale) memory.
 */
double throughput(uint64_t latencyCycles, uint64_t elementOps,
                  const Geometry &deployment);

} // namespace theory

} // namespace pypim

#endif // PYPIM_THEORY_MODEL_HPP
