/**
 * @file
 * Figure 13 (bottom panel): application benchmarks through the tensor
 * library — CORDIC Sine, FP Sum Reduce, FP Mult Reduce, FP Sort 1k and
 * FP Sort 64k. Latencies come from Profiler windows over the
 * bit-accurate simulator; throughput is normalised to the Table III
 * deployment via Eq. (1) (the paper's parallelism = 64M rows).
 *
 * The host-driver series reuses the generation rate of the dominant
 * instruction mix (elementwise float ops) measured by bench_driver's
 * machinery — the tensor layer adds no per-micro-op host cost beyond
 * the driver's own translation.
 */
#include <benchmark/benchmark.h>

#include <cmath>

#include "bench_common.hpp"

using namespace pypim;
using namespace pypim::bench;

namespace
{

/** CORDIC rotation-mode sine over one full-memory tensor. */
uint64_t
cordicCycles(Device &dev, Stats *statsOut)
{
    const uint64_t n = dev.geometry().totalRows();
    Rng rng(7);
    std::vector<float> angles(n);
    for (auto &a : angles)
        a = rng.floatIn(-1.5707f, 1.5707f);
    Tensor z = Tensor::fromVector(angles, &dev);

    const int iters = 16;
    double kinv = 1.0;
    for (int k = 0; k < iters; ++k)
        kinv *= std::sqrt(1.0 + std::ldexp(1.0, -2 * k));
    Profiler prof(dev);
    Tensor x = Tensor::full(n, static_cast<float>(1.0 / kinv), &dev);
    Tensor y = Tensor::zeros(n, DType::Float32, &dev);
    for (int k = 0; k < iters; ++k) {
        const float ang =
            static_cast<float>(std::atan(std::ldexp(1.0, -k)));
        const float p2 = static_cast<float>(std::ldexp(1.0, -k));
        Tensor d = z >= 0.0f;
        Tensor xs = x * p2;
        Tensor ys = y * p2;
        Tensor xn = where(d, x - ys, x + ys);
        Tensor yn = where(d, y + xs, y - xs);
        Tensor zn = where(d, z - ang, z + ang);
        x = xn;
        y = yn;
        z = zn;
    }
    *statsOut = prof.delta();
    // Accuracy sanity check on a few elements.
    for (uint64_t i = 0; i < 8; ++i) {
        const float got = y.getF(i * (n / 8));
        const float expect = std::sin(angles[i * (n / 8)]);
        if (std::fabs(got - expect) > 1e-3) {
            std::fprintf(stderr, "CORDIC verification FAILED\n");
            std::exit(1);
        }
    }
    return prof.cycles() - 0;  // window includes the final reads; tiny
}

template <typename Fn>
Fig13Row
appRow(const char *name, Device &dev, double driverRate, Fn &&body)
{
    Stats d;
    body(&d);
    Fig13Row row;
    row.name = name;
    row.measuredCycles = d.totalCycles();
    row.theoryCycles =
        theory::theoreticalCycles(d, dev.geometry());
    row.conventionCycles = theory::conventionCycles(d, dev.geometry());
    row.streamOps = d.totalOps();
    row.driverRate = driverRate;
    return row;
}

} // namespace

int
main(int argc, char **argv)
{
    applyEngineFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    printEngineBanner();

    Geometry g16 = benchGeometry(16);
    Device dev(g16, Driver::Mode::Parallel, engineConfig());
    Rng rng(11);

    // Representative host generation rate (float add stream).
    const double driverRate = generationRate(
        g16, Driver::Mode::Parallel, [&](Driver &dd) {
            dd.execute(fullInstr(g16, ROp::Add, DType::Float32));
        });

    std::vector<Fig13Row> rows;

    rows.push_back(appRow("CORDIC Sine", dev, driverRate,
                          [&](Stats *s) { cordicCycles(dev, s); }));

    {
        const uint64_t n = g16.totalRows();
        Tensor t = Tensor::fromVector(rng.floatVec(n, 0.f, 1.f), &dev);
        rows.push_back(appRow("FP Sum Reduce", dev, driverRate,
                              [&](Stats *s) {
                                  Profiler p(dev);
                                  (void)t.sum<float>();
                                  *s = p.delta();
                              }));
        Tensor m =
            Tensor::fromVector(rng.floatVec(n, 0.9f, 1.1f), &dev);
        rows.push_back(appRow("FP Mult Reduce", dev, driverRate,
                              [&](Stats *s) {
                                  Profiler p(dev);
                                  (void)m.prod<float>();
                                  *s = p.delta();
                              }));
    }

    {
        Tensor t =
            Tensor::fromVector(rng.floatVec(1024, -1e3f, 1e3f), &dev);
        rows.push_back(appRow("FP Sort 1k", dev, driverRate,
                              [&](Stats *s) {
                                  Profiler p(dev);
                                  t.sort();
                                  *s = p.delta();
                              }));
        // Verify.
        const auto v = t.toFloatVector();
        for (size_t i = 1; i < v.size(); ++i) {
            if (v[i - 1] > v[i]) {
                std::fprintf(stderr, "sort verification FAILED\n");
                return 1;
            }
        }
    }

    {
        Geometry g64 = benchGeometry(64);
        Device dev64(g64, Driver::Mode::Parallel, engineConfig());
        Tensor t = Tensor::fromVector(
            rng.floatVec(65536, -1e3f, 1e3f), &dev64);
        rows.push_back(appRow("FP Sort 64k", dev64, driverRate,
                              [&](Stats *s) {
                                  Profiler p(dev64);
                                  t.sort();
                                  *s = p.delta();
                              }));
        const auto v = t.toFloatVector();
        for (size_t i = 1; i < v.size(); ++i) {
            if (v[i - 1] > v[i]) {
                std::fprintf(stderr, "sort64k verification FAILED\n");
                return 1;
            }
        }
    }

    printFig13("Figure 13 (bottom): application benchmarks", rows);
    std::printf("all application outputs verified against host "
                "references\n");

    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
