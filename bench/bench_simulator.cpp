/**
 * @file
 * Simulator performance (paper §VI: the GPU-accelerated simulator; our
 * CPU substitute uses the same condensed bit-packed storage). Reports
 * the host-side micro-op execution rate as the simulated memory scales
 * in crossbar count and rows — the quantities that determine the cost
 * of one broadcast logic op (O(crossbars * rows/64) word operations) —
 * and sweeps the execution engines (op-major serial, crossbar-major
 * trace, sharded across thread counts) to show how simulation
 * throughput scales with cache blocking and host cores the way real
 * PIM scales with independent compute arrays. The pipelined sweep
 * additionally measures the asynchronous submit path (driver
 * translation overlapped with engine replay, --pipeline=on) against
 * the strictly synchronous one end-to-end, and the storage sweep
 * gauges paged (block-elided, copy-on-write) crossbar storage against
 * the dense slab — throughput parity on dense data, resident-byte
 * reduction on sparse data, and max-geometry scaling past what dense
 * slabs can allocate.
 */
#include <benchmark/benchmark.h>

#include <thread>

#include "bench_common.hpp"
#include "sim/checkpoint.hpp"
#include "sim/serialize.hpp"
#include "sim/sharded_engine.hpp"

using namespace pypim;
using namespace pypim::bench;

namespace
{

/** Execute a mixed micro-op heavy instruction (float add). */
void
simScaling(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    g.rows = static_cast<uint32_t>(state.range(1));
    Simulator sim(g, engineConfig());
    Driver drv(sim, g, Driver::Mode::Parallel);
    Rng rng(3);
    fillRegister(sim, 0, rng, true);
    fillRegister(sim, 1, rng, true);
    const RTypeInstr in = fullInstr(g, ROp::Add, DType::Float32);
    uint64_t ops = 0;
    for (auto _ : state) {
        sim.stats().clear();
        drv.execute(in);
        ops += sim.stats().totalOps();
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops));
    state.counters["simulated_threads"] =
        static_cast<double>(g.totalRows());
}

/** The raw-logic batch both engine benchmarks replay. */
std::vector<Word>
logicBatch(const Geometry &g, int pairs = 512)
{
    const Word init = MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(4, 0),
                                      g.partitions - 1, 1).encode();
    const Word nor = MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                     g.column(1, 0), g.column(4, 0),
                                     g.partitions - 1, 1).encode();
    std::vector<Word> batch;
    batch.reserve(2 * static_cast<size_t>(pairs));
    for (int i = 0; i < pairs; ++i) {
        batch.push_back(init);
        batch.push_back(nor);
    }
    return batch;
}

/** Raw logic micro-op execution rate (single periodic NOR). */
void
rawLogicOps(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    Simulator sim(g, engineConfig());
    const std::vector<Word> batch = logicBatch(g);
    for (auto _ : state)
        sim.performBatch(batch.data(), batch.size());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(batch.size()));
}

/** Trace-engine logic rate (crossbar-major serial replay). */
void
traceLogicOps(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    Simulator sim(g, EngineConfig::trace());
    const std::vector<Word> batch = logicBatch(g);
    for (auto _ : state)
        sim.performBatch(batch.data(), batch.size());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(batch.size()));
}

/** Sharded-engine logic rate: Args({crossbars, threads}). */
void
shardedLogicOps(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    Simulator sim(g, EngineConfig::sharded(
                         static_cast<uint32_t>(state.range(1))));
    const std::vector<Word> batch = logicBatch(g);
    for (auto _ : state)
        sim.performBatch(batch.data(), batch.size());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(batch.size()));
    state.counters["threads"] =
        static_cast<double>(sim.engine().threads());
}

/** Move-op execution rate (H-tree transfers). */
void
moveOps(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    Simulator sim(g, engineConfig());
    std::vector<Word> batch;
    batch.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode());
    for (int i = 0; i < 256; ++i)
        batch.push_back(MicroOp::move(g.numCrossbars / 2,
                                      static_cast<uint32_t>(i) %
                                          g.rows,
                                      0, 0, 1).encode());
    for (auto _ : state)
        sim.performBatch(batch.data(), batch.size());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 256);
}

/** Micro-ops per second replaying @p batch on @p sim. */
double
replayRate(Simulator &sim, const std::vector<Word> &batch,
           double minSeconds = 0.25)
{
    sim.performBatch(batch.data(), batch.size());  // warm-up
    using clock = std::chrono::steady_clock;
    uint64_t reps = 0;
    const auto t0 = clock::now();
    double elapsed = 0.0;
    do {
        sim.performBatch(batch.data(), batch.size());
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    } while (elapsed < minSeconds);
    return static_cast<double>(reps * batch.size()) / elapsed;
}

/**
 * Serial-vs-trace-vs-sharded scaling sweep: the headline table for
 * the engine work. Broadcast logic dominates every workload in the
 * repo, so the sweep replays the canonical INIT+NOR batch. Speedups
 * over the op-major serial reference come from two separable
 * mechanisms, both visible here: the trace column isolates
 * decode-once + crossbar-major cache blocking + INIT/NOR fusion on a
 * single thread, and the sharded rows add shard parallelism on top of
 * the same trace replay. The 1024-crossbar row is the ISSUE 2
 * acceptance gauge: op-major replay streams the whole 128 MB array
 * through the cache once per op there, while crossbar-major keeps a
 * 128 KB crossbar hot for the entire segment.
 */
void
engineSweep(Json *json)
{
    if (json)
        json->beginArray("engine_sweep");
    std::printf("\n=== Execution-engine scaling sweep (INIT+NOR "
                "batch, 1024 rows) ===\n");
    std::printf("host hardware concurrency: %u\n",
                std::thread::hardware_concurrency());
    std::printf("%-10s %14s %24s | %7s %25s %8s\n", "crossbars",
                "serial [Kop/s]", "trace [Kop/s] (speedup)",
                "threads", "sharded [Kop/s] (speedup)", "balance");
    for (uint32_t crossbars : {16u, 64u, 256u, 1024u}) {
        const Geometry g = benchGeometry(crossbars);
        const std::vector<Word> batch = logicBatch(g);
        double serialRate = 0.0;
        {
            Simulator sim(g);
            serialRate = replayRate(sim, batch);
        }
        double traceRate = 0.0;
        {
            Simulator sim(g, EngineConfig::trace());
            traceRate = replayRate(sim, batch);
        }
        if (json) {
            json->beginObject();
            json->field("crossbars", crossbars);
            json->field("serial_ops_per_s", serialRate);
            json->field("trace_ops_per_s", traceRate);
            json->field("trace_speedup", traceRate / serialRate);
            json->beginArray("sharded");
        }
        bool first = true;
        for (uint32_t threads : {1u, 2u, 4u, 8u}) {
            Simulator sim(g, EngineConfig::sharded(threads));
            const double rate = replayRate(sim, batch);
            if (json) {
                json->beginObject();
                json->field("threads", threads);
                json->field("ops_per_s", rate);
                json->field("speedup", rate / serialRate);
                json->end();
            }
            // Shard load balance: min/max applied work across shards
            // (1.00 = perfectly even).
            const auto &eng =
                static_cast<const ShardedEngine &>(sim.engine());
            uint64_t lo = UINT64_MAX, hi = 0;
            for (const Stats &w : eng.shardWork()) {
                lo = std::min(lo, w.totalOps());
                hi = std::max(hi, w.totalOps());
            }
            if (first)
                std::printf("%-10u %14.2f %15.2f (%5.2fx)",
                            crossbars, serialRate / 1e3,
                            traceRate / 1e3,
                            traceRate / serialRate);
            else
                std::printf("%-10s %14s %24s", "", "", "");
            std::printf(" | %7u %15.2f (%5.2fx) %7.2f\n", threads,
                        rate / 1e3, rate / serialRate,
                        hi ? static_cast<double>(lo) /
                                 static_cast<double>(hi)
                           : 0.0);
            first = false;
        }
        if (json) {
            json->end();  // sharded
            json->end();  // row
        }
    }
    if (json)
        json->end();  // engine_sweep
    std::printf("(sharded speedups require free host cores; the "
                "trace column and the 1024-crossbar row are the "
                "acceptance gauges for ISSUE 2)\n");
}

/**
 * End-to-end (driver translation + engine replay) micro-ops per
 * second for one engine config: repeated driver-translated fp-add
 * instructions with the stream cache off, so every rep really
 * translates. The trailing flush is inside the timed window, so the
 * pipelined config pays for all replay it deferred. @p checksum
 * digests the destination register so the on/off runs can assert
 * bit-identical results.
 */
double
endToEndRate(const Geometry &g, const EngineConfig &ec,
             uint64_t &checksum, double minSeconds = 0.3,
             StorageGauges *gauges = nullptr)
{
    Simulator sim(g, ec);
    Rng rng(11);
    fillRegister(sim, 0, rng, true);
    fillRegister(sim, 1, rng, true);
    Driver drv(sim, g, Driver::Mode::Parallel);
    drv.setStreamCacheEnabled(false);
    const RTypeInstr in = fullInstr(g, ROp::Add, DType::Float32);
    drv.execute(in);  // warm-up
    sim.flush();
    sim.stats().clear();
    const auto [reps, elapsed] = timedReps(
        [&] { drv.execute(in); }, [&] { sim.flush(); }, minSeconds);
    (void)reps;
    const uint64_t ops = sim.stats().totalOps();
    checksum = 0;
    for (uint32_t xb = 0; xb < g.numCrossbars; xb += 7)
        for (uint32_t row = 0; row < g.rows; row += 97)
            checksum = checksum * 1099511628211ull ^
                       sim.crossbar(xb).read(in.rd, row);
    if (gauges)
        *gauges = sim.storageGauges();
    return static_cast<double>(ops) / elapsed;
}

/**
 * Asynchronous-pipeline sweep: the ISSUE 3 acceptance gauge. The same
 * driver-bound workload (per-instruction translation, no stream
 * cache) runs through the sharded engine with the pipeline off
 * (strictly alternating translate/replay) and on (translation of
 * batch k+1 overlapped with replay of batch k on the consumer
 * thread). On a multi-core host the speedup approaches
 * min(2, 1 + min(Tt, Tr) / max(Tt, Tr)); on a single core the two
 * stages time-share and the ratio stays near 1.
 */
void
pipelineSweep(Json *json)
{
    const uint32_t threads = engineConfig().resolvedThreads();
    std::printf("\n=== Pipelined end-to-end sweep (driver fp-add + "
                "replay, sharded engine, %u threads) ===\n", threads);
    std::printf("%-10s %18s %18s %8s %10s\n", "crossbars",
                "sync [Kop/s]", "pipelined [Kop/s]", "speedup",
                "identical");
    if (json)
        json->beginArray("pipeline_sweep");
    for (uint32_t crossbars : {64u, 256u, 1024u}) {
        const Geometry g = benchGeometry(crossbars);
        uint64_t ckOff = 0, ckOn = 0;
        const double off =
            endToEndRate(g, EngineConfig::sharded(threads), ckOff);
        const double on = endToEndRate(
            g, EngineConfig::sharded(threads).withPipeline(), ckOn);
        std::printf("%-10u %18.2f %18.2f %7.2fx %10s\n", crossbars,
                    off / 1e3, on / 1e3, on / off,
                    ckOff == ckOn ? "yes" : "NO");
        if (json) {
            json->beginObject();
            json->field("crossbars", crossbars);
            json->field("sync_ops_per_s", off);
            json->field("pipelined_ops_per_s", on);
            json->field("speedup", on / off);
            json->field("bit_identical", ckOff == ckOn);
            json->end();
        }
    }
    if (json)
        json->end();
    std::printf("(>=1.2x at >=256 crossbars on a multi-core host is "
                "the ISSUE 3 acceptance gauge; 'identical' checks "
                "bit-equality of the result register)\n");
}

/**
 * Multi-device sharding sweep: the same end-to-end workload (driver
 * fp-add translation + replay plus a periodic boundary-crossing
 * inter-warp move) runs on one logical Device sharded across 1, 2
 * and 4 sub-device Simulators (sim/device_group.hpp). Results MUST
 * be bit-identical at every device count — the function returns
 * false otherwise, and the CI bench smoke step exits non-zero on it.
 * With the pipeline enabled each sub-device replays on its own
 * consumer thread, so multi-core hosts see the slices progress in
 * parallel; the move column shows the cost of the explicit boundary
 * exchange (the only inter-device traffic).
 */
bool
deviceSweep(Json *json, double minSeconds = 0.25)
{
    const Geometry g = benchGeometry(16);
    std::printf("\n=== Multi-device sharding sweep (driver fp-add + "
                "boundary moves, %u crossbars) ===\n", g.numCrossbars);
    std::printf("%-10s %14s %12s %14s %10s\n", "devices",
                "instr/s", "boundary", "xfers/move op", "identical");
    if (json)
        json->beginArray("device_sweep");
    uint64_t ckRef = 0;
    bool allIdentical = true;
    for (uint32_t devices : {1u, 2u, 4u}) {
        // Pinned in-process: this sweep measures engine scaling and
        // seeds/digests crossbar state directly, which worker
        // processes don't expose; transportSweep owns the socket
        // dimension.
        const EngineConfig ec = engineConfig()
                                    .withDevices(devices)
                                    .withTransport(TransportKind::Inproc);
        Device dev(g, Driver::Mode::Parallel, ec);
        Rng rng(29);
        for (uint32_t w = 0; w < g.numCrossbars; ++w)
            for (uint32_t r = 0; r < g.rows; ++r) {
                dev.group().crossbar(w).writeRow(0, rng.word(), r);
                dev.group().crossbar(w).writeRow(1, rng.word(), r);
            }
        const RTypeInstr in = fullInstr(g, ROp::Add, DType::Int32);
        MoveInstr mv;
        mv.kind = MoveInstr::Kind::InterWarp;
        mv.srcReg = 2;
        mv.dstReg = 3;
        mv.srcRow = 1;
        mv.dstRow = 2;
        mv.warps = Range(0, g.numCrossbars / 2 - 1, 1);
        mv.dstStartWarp = g.numCrossbars / 2;  // crosses every cut
        dev.driver().execute(in);  // warm-up (records + builds trace)
        dev.flush();
        dev.group().clearStats();
        uint64_t instrs = 0;
        const auto [reps, elapsed] = timedReps(
            [&] {
                for (int k = 0; k < 8; ++k)
                    dev.driver().execute(in);
                dev.driver().execute(mv);
                instrs += 9;
            },
            [&] { dev.flush(); }, minSeconds);
        (void)reps;
        uint64_t ck = 0;
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
            for (uint32_t row = 0; row < g.rows; row += 3)
                ck = ck * 1099511628211ull ^
                     dev.group().crossbar(xb).read(in.rd, row) ^
                     (dev.group().crossbar(xb).read(mv.dstReg, mv.dstRow)
                      * 0x9E3779B97F4A7C15ull);
        if (devices == 1)
            ckRef = ck;
        const bool identical = ck == ckRef;
        allIdentical = allIdentical && identical;
        const auto &tr = dev.group().traffic();
        const double xfersPerMove =
            tr.boundaryMoves
                ? static_cast<double>(tr.boundaryTransfers) /
                      static_cast<double>(tr.boundaryMoves)
                : 0.0;
        std::printf("%-10u %14.1f %12llu %14.1f %10s\n", devices,
                    static_cast<double>(instrs) / elapsed,
                    static_cast<unsigned long long>(tr.boundaryMoves),
                    xfersPerMove, identical ? "yes" : "NO — BUG");
        if (json) {
            json->beginObject();
            json->field("devices", devices);
            json->field("instr_per_s",
                        static_cast<double>(instrs) / elapsed);
            json->field("move_ops", tr.moveOps);
            json->field("move_transfers", tr.moveTransfers);
            json->field("boundary_moves", tr.boundaryMoves);
            json->field("boundary_transfers", tr.boundaryTransfers);
            json->field("bit_identical", identical);
            json->end();
        }
    }
    if (json)
        json->end();
    std::printf("(boundary = Moves needing a cross-device exchange — "
                "the only inter-device traffic; 'identical' checks "
                "bit-equality of result and move-destination "
                "registers against the monolithic device)\n");
    return allIdentical;
}

/**
 * Paged-vs-dense crossbar-storage sweep (the ISSUE 6 gauges), three
 * panels sharing one contract: every dense/paged pair of runs MUST be
 * bit-identical — the function returns false otherwise and the CI
 * bench smoke step exits non-zero on it.
 *
 *  1. dense-data worst case: the end-to-end fp-add workload fills
 *     every row, so paged storage densifies completely and pays its
 *     block-table indirection with no elision to show for it — warm
 *     replay within ~5% of dense is the acceptance gauge;
 *  2. row-sparse residency: the same workload touching only the first
 *     512 rows of a 8192-row geometry — one 512-row block per live
 *     column — where paged resident bytes drop by the untouched-block
 *     ratio (>=5x is the acceptance gauge);
 *  3. max-geometry scaling (paged only): simulators up to the paper's
 *     full 64k-crossbar deployment touch a 16-crossbar working set;
 *     the dense-equivalent slab size is COMPUTED, never allocated —
 *     at 64k crossbars it exceeds 8 GB while the paged simulator
 *     stays in the megabyte range.
 */
bool storageSweep(Json *json);

/** Panel-2 helper: run the row-sparse workload (only the first
 *  @p touchedRows rows are ever written) and digest the result. */
uint64_t
sparseStorageChecksum(const Geometry &g, const EngineConfig &ec,
                      uint32_t touchedRows, StorageGauges &gauges)
{
    Simulator sim(g, ec);
    Rng rng(17);
    for (uint32_t w = 0; w < g.numCrossbars; ++w)
        for (uint32_t r = 0; r < touchedRows; ++r) {
            sim.crossbar(w).writeRow(0, rng.word(), r);
            sim.crossbar(w).writeRow(1, rng.word(), r);
        }
    Driver drv(sim, g, Driver::Mode::Parallel);
    RTypeInstr in = fullInstr(g, ROp::Add, DType::Int32);
    in.rows = Range(0, touchedRows - 1, 1);
    drv.execute(in);
    sim.flush();
    uint64_t ck = 0;
    for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
        for (uint32_t row = 0; row < touchedRows; ++row)
            ck = ck * 1099511628211ull ^
                 sim.crossbar(xb).read(in.rd, row);
    gauges = sim.storageGauges();
    return ck;
}

bool
storageSweep(Json *json)
{
    bool identical = true;
    if (json)
        json->beginObject("storage_sweep");

    // Panel 1: dense-data throughput parity (worst case for paged).
    {
        const Geometry g = benchGeometry(64);
        uint64_t ckDense = 0, ckPaged = 0;
        StorageGauges sgDense, sgPaged;
        const double rDense = endToEndRate(
            g, engineConfig().withStorage(XbarStorage::Dense), ckDense,
            0.3, &sgDense);
        const double rPaged = endToEndRate(
            g, engineConfig().withStorage(XbarStorage::Paged), ckPaged,
            0.3, &sgPaged);
        const bool ok = ckDense == ckPaged;
        identical = identical && ok;
        std::printf("\n=== Crossbar-storage sweep: dense-data "
                    "end-to-end (fp-add, %u crossbars) ===\n",
                    g.numCrossbars);
        std::printf("%-8s %14s %16s %10s\n", "storage", "Kop/s",
                    "resident [MB]", "identical");
        std::printf("%-8s %14.2f %16.2f %10s\n", "dense",
                    rDense / 1e3,
                    static_cast<double>(sgDense.residentBytes) / 1e6,
                    "-");
        std::printf("%-8s %14.2f %16.2f %10s\n", "paged",
                    rPaged / 1e3,
                    static_cast<double>(sgPaged.residentBytes) / 1e6,
                    ok ? "yes" : "NO — BUG");
        std::printf("(paged/dense warm throughput: %.3f — within "
                    "~0.95 is the ISSUE 6 overhead gauge on "
                    "fully-dense data)\n", rPaged / rDense);
        if (json) {
            json->beginObject("dense_data");
            json->field("dense_ops_per_s", rDense);
            json->field("paged_ops_per_s", rPaged);
            json->field("paged_over_dense", rPaged / rDense);
            jsonStorageGauges(*json, "dense_gauges", sgDense);
            jsonStorageGauges(*json, "paged_gauges", sgPaged);
            json->field("bit_identical", ok);
            json->end();
        }
    }

    // Panel 2: row-sparse residency at a tall geometry.
    {
        Geometry g = benchGeometry(64);
        g.rows = 8192;  // 16 blocks per column; the workload touches 1
        const uint32_t touched = 512;
        StorageGauges sgDense, sgPaged;
        const uint64_t ckDense = sparseStorageChecksum(
            g, engineConfig().withStorage(XbarStorage::Dense), touched,
            sgDense);
        const uint64_t ckPaged = sparseStorageChecksum(
            g, engineConfig().withStorage(XbarStorage::Paged), touched,
            sgPaged);
        const bool ok = ckDense == ckPaged;
        identical = identical && ok;
        const double ratio =
            static_cast<double>(sgDense.residentBytes) /
            static_cast<double>(std::max<uint64_t>(
                1, sgPaged.residentBytes));
        std::printf("\n=== Crossbar-storage sweep: row-sparse "
                    "residency (%u of %u rows touched) ===\n", touched,
                    g.rows);
        std::printf("dense resident %.2f MB, paged resident %.2f MB "
                    "(%.1fx smaller; >=5x is the ISSUE 6 gauge), "
                    "blocks present %llu / %llu, identical %s\n",
                    static_cast<double>(sgDense.residentBytes) / 1e6,
                    static_cast<double>(sgPaged.residentBytes) / 1e6,
                    ratio,
                    static_cast<unsigned long long>(
                        sgPaged.blocksPresent),
                    static_cast<unsigned long long>(
                        sgPaged.blocksTotal),
                    ok ? "yes" : "NO — BUG");
        if (json) {
            json->beginObject("row_sparse");
            json->field("rows", g.rows);
            json->field("touched_rows", touched);
            jsonStorageGauges(*json, "dense_gauges", sgDense);
            jsonStorageGauges(*json, "paged_gauges", sgPaged);
            json->field("dense_over_paged_bytes", ratio);
            json->field("bit_identical", ok);
            json->end();
        }
    }

    // Panel 3: max-geometry scaling, paged only. The dense-equivalent
    // slab is computed arithmetically — allocating it at 64k crossbars
    // (>8 GB) is exactly what this storage mode exists to avoid.
    {
        std::printf("\n=== Crossbar-storage sweep: max geometry "
                    "(paged, 16-crossbar working set) ===\n");
        std::printf("%-10s %18s %16s %8s %12s\n", "crossbars",
                    "dense-equiv [MB]", "resident [MB]", "ratio",
                    "RSS [MB]");
        if (json)
            json->beginArray("max_geometry");
        for (uint32_t crossbars : {4096u, 16384u, 65536u}) {
            const Geometry g = benchGeometry(crossbars);
            EngineConfig ec;  // serial, synchronous: the panel gauges
            ec.storage = XbarStorage::Paged;  // bytes, not op rate
            Simulator sim(g, ec);
            std::vector<Word> batch;
            batch.push_back(
                MicroOp::crossbarMask(Range(0, 15, 1)).encode());
            batch.push_back(MicroOp::rowMask(Range(0, 127, 1)).encode());
            const Word init =
                MicroOp::logicH(Gate::Init1, 0, 0, g.column(4, 0),
                                g.partitions - 1, 1).encode();
            const Word nor =
                MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                g.column(1, 0), g.column(4, 0),
                                g.partitions - 1, 1).encode();
            for (int i = 0; i < 64; ++i) {
                batch.push_back(init);
                batch.push_back(nor);
            }
            sim.performBatch(batch.data(), batch.size());
            const StorageGauges sg = sim.storageGauges();
            const uint64_t denseEquiv =
                static_cast<uint64_t>(g.numCrossbars) * g.cols *
                ((g.rows + 63) / 64) * 8;
            std::printf("%-10u %18.1f %16.3f %7.0fx %12.1f\n",
                        crossbars,
                        static_cast<double>(denseEquiv) / 1e6,
                        static_cast<double>(sg.residentBytes) / 1e6,
                        static_cast<double>(denseEquiv) /
                            static_cast<double>(std::max<uint64_t>(
                                1, sg.residentBytes)),
                        static_cast<double>(currentRssKb()) / 1e3);
            if (json) {
                json->beginObject();
                json->field("crossbars", crossbars);
                json->field("dense_equivalent_bytes", denseEquiv);
                jsonStorageGauges(*json, "gauges", sg);
                json->field("current_rss_kb", currentRssKb());
                json->end();
            }
        }
        if (json)
            json->end();  // max_geometry
        std::printf("(the 64k-crossbar dense-equivalent slab exceeds "
                    "8 GB — geometries that OOM under dense run in "
                    "megabytes under paged storage)\n");
    }

    if (json) {
        json->field("peak_rss_kb", peakRssKb());
        json->end();  // storage_sweep
    }
    return identical;
}

/**
 * The self-contained warm-replay batch of the compiled-replay sweep:
 * INIT1+NOR pairs cycling over eight destination registers, the shape
 * of a driver-translated arithmetic loop (each temporary written
 * once, then the next). The builder fuses every pair into one
 * FusedNotNor; the program compiler then merges runs of up to eight
 * consecutive fused gates (disjoint outputs, shared inputs) into one
 * multi-section pass — so compiled replay resolves one mask and
 * dispatches one instruction where the interpreter walks eight ops.
 */
std::vector<Word>
compiledReplayBatch(const Geometry &g, int pairs = 512)
{
    std::vector<Word> ops;
    ops.reserve(2 + 2 * static_cast<size_t>(pairs));
    ops.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars - 1, 1))
            .encode());
    ops.push_back(MicroOp::rowMask(Range(0, g.rows - 1, 1)).encode());
    for (int i = 0; i < pairs; ++i) {
        const uint32_t out =
            g.column(4 + static_cast<uint32_t>(i) % 8, 0);
        ops.push_back(MicroOp::logicH(Gate::Init1, 0, 0, out,
                                      g.partitions - 1, 1).encode());
        ops.push_back(MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                      g.column(1, 0), out,
                                      g.partitions - 1, 1).encode());
    }
    return ops;
}

/** Warm-cache replay rate [op/s] of one frozen trace; digests the
 *  eight destination registers into @p checksum. */
double
warmReplayRate(const Geometry &g, const EngineConfig &ec,
               const std::vector<Word> &ops, uint64_t &checksum,
               double minSeconds = 0.25)
{
    Simulator sim(g, ec);
    Rng rng(23);
    fillRegister(sim, 0, rng);
    fillRegister(sim, 1, rng);
    auto trace = sim.prepareTrace(ops.data(), ops.size(), true);
    fatalIf(trace == nullptr,
            "compiled-replay sweep: stream must be cacheable");
    sim.submitTrace(trace);  // warm-up
    sim.flush();
    const auto [reps, elapsed] = timedReps(
        [&] { sim.submitTrace(trace); }, [&] { sim.flush(); },
        minSeconds);
    checksum = 14695981039346656037ull;
    for (uint32_t xb = 0; xb < g.numCrossbars; xb += 3)
        for (uint32_t row = 0; row < g.rows; row += 61)
            for (uint32_t slot = 4; slot < 12; ++slot)
                checksum = checksum * 1099511628211ull ^
                           sim.crossbar(xb).read(slot, row);
    return static_cast<double>(reps * ops.size()) / elapsed;
}

/**
 * Compiled-replay sweep: the ISSUE 8 acceptance gauge. The same
 * frozen trace replays warm through the segment interpreter
 * (--compiled-replay=off) and through the compiled ReplayProgram
 * executors, across crossbar counts, on the process-wide engine
 * selection. State checksums MUST be bit-identical — the function
 * returns false otherwise and the CI bench smoke step exits non-zero
 * on it. >=1.25x at >=256 crossbars is the acceptance gauge.
 */
bool
compiledSweep(Json *json)
{
    std::printf("\n=== Compiled-replay sweep (warm frozen trace, "
                "INIT+NOR over 8 destinations, 64-row "
                "crossbars) ===\n");
    std::printf("%-10s %20s %18s %8s %10s\n", "crossbars",
                "interpreter [Kop/s]", "compiled [Kop/s]", "speedup",
                "identical");
    if (json)
        json->beginArray("compiled_replay_sweep");
    bool allIdentical = true;
    for (uint32_t crossbars : {16u, 64u, 256u, 1024u}) {
        // Shallow 64-row crossbars (one mask word per column): at the
        // paper's 1024-row geometry each LogicH moves ~1.5 KB per
        // crossbar and both paths are memory-bound, hiding the replay
        // overhead this tier removes. Short columns are the
        // dispatch-dominated regime the compiled programs target.
        Geometry g = benchGeometry(crossbars);
        g.rows = 64;
        const std::vector<Word> ops = compiledReplayBatch(g);
        uint64_t ckInterp = 0, ckCompiled = 0;
        const double interp = warmReplayRate(
            g, engineConfig().withCompiledReplay(false), ops,
            ckInterp);
        const double compiled = warmReplayRate(
            g, engineConfig().withCompiledReplay(true), ops,
            ckCompiled);
        const bool identical = ckInterp == ckCompiled;
        allIdentical = allIdentical && identical;
        std::printf("%-10u %20.2f %18.2f %7.2fx %10s\n", crossbars,
                    interp / 1e3, compiled / 1e3, compiled / interp,
                    identical ? "yes" : "NO — BUG");
        if (json) {
            json->beginObject();
            json->field("crossbars", crossbars);
            json->field("interpreter_ops_per_s", interp);
            json->field("compiled_ops_per_s", compiled);
            json->field("speedup", compiled / interp);
            json->field("bit_identical", identical);
            json->end();
        }
    }
    if (json)
        json->end();
    std::printf("(>=1.25x at >=256 crossbars is the ISSUE 8 "
                "acceptance gauge; 'identical' checks bit-equality "
                "of all eight destination registers)\n");
    return allIdentical;
}

/**
 * Bulk tensor I/O sweep (the ISSUE 7 acceptance gauge): a 1 Mi-element
 * int tensor round-trips host -> device -> host through the
 * element-wise oracle (PYPIM_BULK_IO=0 semantics: one ReadInstr
 * dispatch and one pipeline drain per element on readback) and through
 * the bulk block-transfer path (64x64 bit-transpose gather/scatter
 * kernels, ONE drain per transfer). Values AND architectural Stats
 * MUST be bit-identical — the function returns false otherwise and
 * the CI bench smoke step exits non-zero on it. >=10x on the readback
 * is the acceptance gauge on a >=1M-element tensor.
 */
bool
ioSweep(Json *json)
{
    const Geometry g = benchGeometry(1024);
    const uint64_t n = g.totalRows();  // 1 Mi elements
    std::vector<int32_t> host(n);
    Rng rng(41);
    for (auto &v : host)
        v = static_cast<int32_t>(rng.word());
    std::printf("\n=== Bulk tensor I/O sweep (%llu-element int "
                "tensor, %u crossbars) ===\n",
                static_cast<unsigned long long>(n), g.numCrossbars);
    std::printf("%-12s %12s %14s %10s\n", "path", "upload [s]",
                "readback [s]", "identical");
    double upload[2] = {0, 0}, readback[2] = {0, 0};
    uint64_t checksum[2] = {0, 0}, instrs[2] = {0, 0};
    Stats arch[2];
    uint64_t wordsTransposed = 0, drains = 0, bulkXfers = 0;
    using clock = std::chrono::steady_clock;
    for (const bool bulk : {false, true}) {
        EngineConfig ec = engineConfig();
        ec.bulkIo = bulk;
        Device dev(g, Driver::Mode::Parallel, ec);
        const auto t0 = clock::now();
        Tensor t = Tensor::fromVector(host, &dev);
        dev.flush();
        const auto t1 = clock::now();
        const std::vector<int32_t> back = t.toIntVector();
        const auto t2 = clock::now();
        dev.flush();
        uint64_t ck = 14695981039346656037ull;
        for (const int32_t v : back)
            ck = ck * 1099511628211ull ^ static_cast<uint32_t>(v);
        const int k = bulk ? 1 : 0;
        upload[k] = std::chrono::duration<double>(t1 - t0).count();
        readback[k] = std::chrono::duration<double>(t2 - t1).count();
        checksum[k] = ck;
        arch[k] = dev.stats();
        instrs[k] = dev.driver().stats().instructions;
        if (bulk) {
            const Stats &ds = dev.driver().stats();
            wordsTransposed = ds.ioWordsTransposed;
            drains = ds.ioDrains;
            bulkXfers = ds.bulkReads + ds.bulkWrites;
        }
    }
    const bool identical = checksum[0] == checksum[1] &&
                           arch[0] == arch[1] &&
                           instrs[0] == instrs[1];
    std::printf("%-12s %12.3f %14.3f %10s\n", "elementwise",
                upload[0], readback[0], "-");
    std::printf("%-12s %12.3f %14.3f %10s\n", "bulk", upload[1],
                readback[1], identical ? "yes" : "NO — BUG");
    std::printf("bulk speedup: upload %.1fx, readback %.1fx (>=10x "
                "readback on >=1M elements is the ISSUE 7 gauge)\n",
                upload[0] / upload[1], readback[0] / readback[1]);
    std::printf("bulk counters: %llu transfers, %llu words "
                "transposed, %llu drains ('identical' checks values, "
                "architectural Stats and driver instruction counts "
                "against the element-wise oracle)\n",
                static_cast<unsigned long long>(bulkXfers),
                static_cast<unsigned long long>(wordsTransposed),
                static_cast<unsigned long long>(drains));
    if (json) {
        json->beginObject("io_sweep");
        json->field("elements", n);
        json->field("elementwise_upload_s", upload[0]);
        json->field("elementwise_readback_s", readback[0]);
        json->field("bulk_upload_s", upload[1]);
        json->field("bulk_readback_s", readback[1]);
        json->field("upload_speedup", upload[0] / upload[1]);
        json->field("readback_speedup", readback[0] / readback[1]);
        json->field("bulk_transfers", bulkXfers);
        json->field("io_words_transposed", wordsTransposed);
        json->field("io_drains", drains);
        json->field("bit_identical", identical);
        json->end();
    }
    return identical;
}

/**
 * Checkpoint sweep (the ISSUE 9 acceptance gauge): save/restore
 * latency and file size as resident data grows, across dense/paged
 * storage and 1/2/4 sub-devices. Every row round-trips through a
 * fresh device and re-encodes both group images: the function returns
 * false unless crossbar state, mask state and architectural Stats
 * come back bit-identical — the CI bench smoke step exits non-zero
 * on it. The paged/dense pair at equal fill levels also demonstrates
 * the canonical encoding: identical bytes on disk from either
 * representation.
 */
bool
checkpointSweep(Json *json)
{
    const Geometry g = benchGeometry(64);
    const std::string path =
        "/tmp/pypim_bench_ckpt_" + std::to_string(::getpid()) +
        ".bin";
    std::printf("\n=== Checkpoint sweep (%u crossbars, save + "
                "restore round trip) ===\n", g.numCrossbars);
    std::printf("%-7s %-8s %6s %14s %12s %10s %12s %10s\n",
                "storage", "devices", "slots", "resident [MB]",
                "file [MB]", "save [ms]", "restore [ms]",
                "identical");
    if (json)
        json->beginArray("checkpoint_sweep");
    bool allIdentical = true;
    using clock = std::chrono::steady_clock;
    for (const XbarStorage st :
         {XbarStorage::Dense, XbarStorage::Paged}) {
        for (const uint32_t devices : {1u, 2u, 4u}) {
            // Pinned in-process: seeds crossbar state directly,
            // which worker processes don't expose (transportSweep
            // covers checkpointing over the socket transport).
            const EngineConfig ec = engineConfig()
                                        .withDevices(devices)
                                        .withStorage(st)
                                        .withTransport(
                                            TransportKind::Inproc);
            for (const uint32_t slots : {1u, 4u, 8u}) {
                Device dev(g, Driver::Mode::Parallel, ec);
                Rng rng(slots * 7 + devices);
                for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
                    for (uint32_t s = 0; s < slots; ++s)
                        for (uint32_t r = 0; r < g.rows; ++r)
                            dev.group().crossbar(xb).writeRow(
                                s, rng.word(), r);
                const uint64_t resident =
                    dev.group().storageGauges().residentBytes;

                const auto t0 = clock::now();
                const uint64_t bytes = dev.checkpoint(path);
                const auto t1 = clock::now();
                Device back(g, Driver::Mode::Parallel, ec);
                back.restore(path);
                const auto t2 = clock::now();

                const bool identical =
                    encodeCheckpoint(buildGroupImage(dev.group())) ==
                    encodeCheckpoint(buildGroupImage(back.group()));
                allIdentical = allIdentical && identical;
                const double saveMs =
                    std::chrono::duration<double, std::milli>(t1 - t0)
                        .count();
                const double restoreMs =
                    std::chrono::duration<double, std::milli>(t2 - t1)
                        .count();
                std::printf(
                    "%-7s %-8u %6u %14.2f %12.2f %10.2f %12.2f %10s\n",
                    xbarStorageName(st), devices, slots,
                    static_cast<double>(resident) / 1e6,
                    static_cast<double>(bytes) / 1e6, saveMs,
                    restoreMs, identical ? "yes" : "NO — BUG");
                if (json) {
                    json->beginObject();
                    json->field("storage", xbarStorageName(st));
                    json->field("devices", devices);
                    json->field("slots_filled", slots);
                    json->field("resident_bytes", resident);
                    json->field("checkpoint_bytes", bytes);
                    json->field("save_ms", saveMs);
                    json->field("restore_ms", restoreMs);
                    json->field("bit_identical", identical);
                    json->end();
                }
            }
        }
    }
    std::remove(path.c_str());
    if (json)
        json->end();
    std::printf("(file size tracks LIVE data, not geometry; "
                "'identical' re-encodes both devices' canonical "
                "images — state, masks and Stats — after the round "
                "trip)\n");
    return allIdentical;
}

/**
 * Shard-transport sweep: the cross-process socket fleet against the
 * in-process group it must be observationally identical to, at 2 and
 * 4 workers. The measured phase reports the latency/bandwidth cost
 * model of the wire — frame bytes per second, synchronous round trips
 * per instruction, worker-cache trace hits and the mean wall time of
 * a boundary-Move exchange phase — and a separate fixed-shape
 * verification epoch (fresh device, exactly one program) re-encodes
 * the canonical checkpoint image so rep-count differences cannot leak
 * into the bit-identity check. Returns false on any divergence; the
 * CI bench smoke step exits non-zero on it.
 */
bool
transportSweep(Json *json)
{
    const Geometry g = benchGeometry(16);
    std::printf("\n=== Shard transport sweep (tensor fp-add + "
                "boundary moves, %u crossbars) ===\n", g.numCrossbars);
    std::printf("%-9s %-8s %12s %11s %10s %10s %11s %10s\n",
                "transport", "devices", "instr/s", "wire MB/s",
                "rt/instr", "hits", "exch [us]", "identical");
    if (json)
        json->beginArray("transport_sweep");
    bool allIdentical = true;

    const auto fillOperands = [](std::vector<int32_t> &va,
                                 std::vector<int32_t> &vb) {
        Rng rng(61);
        for (size_t i = 0; i < va.size(); ++i) {
            va[i] = static_cast<int32_t>(rng.word());
            vb[i] = static_cast<int32_t>(rng.word() | 1);
        }
    };
    MoveInstr mv;
    mv.kind = MoveInstr::Kind::InterWarp;
    mv.srcReg = 2;
    mv.dstReg = 3;
    mv.srcRow = 1;
    mv.dstRow = 2;
    mv.warps = Range(0, g.numCrossbars / 2 - 1, 1);
    mv.dstStartWarp = g.numCrossbars / 2;  // crosses every cut

    // Fixed-shape canonical image: fresh device, one program, so the
    // comparison is independent of how many reps the timer ran.
    const auto canonicalImage = [&](const EngineConfig &ec) {
        Device dev(g, Driver::Mode::Parallel, ec);
        std::vector<int32_t> va(2048), vb(2048);
        fillOperands(va, vb);
        Tensor a = Tensor::fromVector(va, &dev);
        Tensor b = Tensor::fromVector(vb, &dev);
        Tensor c = a * b + a;
        benchmark::DoNotOptimize(c.toIntVector());
        dev.driver().execute(mv);
        dev.flush();
        return encodeCheckpoint(buildGroupImage(dev.group()));
    };

    for (const uint32_t devices : {2u, 4u}) {
        std::vector<uint8_t> imgRef;
        for (const TransportKind tk :
             {TransportKind::Inproc, TransportKind::Socket}) {
            const EngineConfig ec = engineConfig()
                                        .withDevices(devices)
                                        .withTransport(tk);
            Device dev(g, Driver::Mode::Parallel, ec);
            std::vector<int32_t> va(2048), vb(2048);
            fillOperands(va, vb);
            Tensor a = Tensor::fromVector(va, &dev);
            Tensor b = Tensor::fromVector(vb, &dev);
            {
                // Warm-up: builds the traces and (socket) ships each
                // signature across the wire once per worker.
                Tensor c = a * b + a;
                benchmark::DoNotOptimize(c.toIntVector());
            }
            uint64_t instrs = 0;
            const auto [reps, elapsed] = timedReps(
                [&] {
                    Tensor c = a * b + a;
                    benchmark::DoNotOptimize(c.toIntVector());
                    dev.driver().execute(mv);
                    instrs += 4;
                },
                [&] { dev.flush(); }, 0.25);
            (void)reps;
            const WireTelemetry wt = dev.group().wireTelemetry();

            const std::vector<uint8_t> img = canonicalImage(ec);
            if (tk == TransportKind::Inproc)
                imgRef = img;
            const bool identical = img == imgRef;
            allIdentical = allIdentical && identical;

            const double wireMBs =
                static_cast<double>(wt.bytesTx + wt.bytesRx) / 1e6 /
                elapsed;
            const double rtPerInstr =
                static_cast<double>(wt.roundTrips) /
                static_cast<double>(instrs);
            const double exchUs =
                wt.exchanges ? static_cast<double>(wt.exchangeNs) /
                                   static_cast<double>(wt.exchanges) /
                                   1e3
                             : 0.0;
            std::printf("%-9s %-8u %12.1f %11.2f %10.2f %10llu "
                        "%11.2f %10s\n",
                        transportKindName(tk), devices,
                        static_cast<double>(instrs) / elapsed, wireMBs,
                        rtPerInstr,
                        static_cast<unsigned long long>(wt.traceHits),
                        exchUs, identical ? "yes" : "NO — BUG");
            if (json) {
                json->beginObject();
                json->field("transport", transportKindName(tk));
                json->field("devices", devices);
                json->field("instr_per_s",
                            static_cast<double>(instrs) / elapsed);
                json->field("wire_tx_bytes", wt.bytesTx);
                json->field("wire_rx_bytes", wt.bytesRx);
                json->field("round_trips", wt.roundTrips);
                json->field("trace_installs", wt.traceInstalls);
                json->field("trace_hits", wt.traceHits);
                json->field("exchanges", wt.exchanges);
                json->field("exchange_ns", wt.exchangeNs);
                json->field("bit_identical", identical);
                json->end();
            }
        }
    }
    if (json)
        json->end();
    std::printf("(wire MB/s = framed bytes both directions over the "
                "measured phase; rt/instr = synchronous round trips "
                "per driver instruction; hits = warm-trace replays "
                "served from a worker cache without reshipping the "
                "image; exch [us] = mean wall time of one boundary-"
                "Move stage/broadcast/land phase; 'identical' re-runs "
                "a fixed program on a fresh fleet and compares "
                "canonical checkpoint images against inproc)\n");
    return allIdentical;
}

} // namespace

BENCHMARK(simScaling)
    ->Args({4, 1024})
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({16, 64})
    ->Args({16, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(rawLogicOps)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(traceLogicOps)->Arg(4)->Arg(16)->Arg(64)->Arg(1024);
BENCHMARK(shardedLogicOps)
    ->Args({64, 1})
    ->Args({64, 2})
    ->Args({64, 4})
    ->Args({64, 8})
    ->Args({256, 4})
    ->Args({256, 8});
BENCHMARK(moveOps)->Arg(16)->Arg(64);

int
main(int argc, char **argv)
{
    applyEngineFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    printEngineBanner();
    Json json;
    Json *j = jsonOutPath().empty() ? nullptr : &json;
    if (j) {
        j->beginObject();
        j->field("bench", "bench_simulator");
        jsonConfig(*j, benchGeometry());
    }
    engineSweep(j);
    pipelineSweep(j);
    const bool devicesIdentical = deviceSweep(j);
    const bool storageIdentical = storageSweep(j);
    const bool ioIdentical = ioSweep(j);
    const bool compiledIdentical = compiledSweep(j);
    const bool checkpointIdentical = checkpointSweep(j);
    const bool transportIdentical = transportSweep(j);
    if (j) {
        j->end();
        j->writeTo(jsonOutPath());
    }
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // Non-zero exit when sharded execution diverged from the
    // monolithic device, paged storage diverged from dense, the bulk
    // I/O path diverged from the element-wise oracle, compiled
    // replay diverged from the interpreter, a checkpoint failed to
    // restore bit-identical, or the cross-process socket fleet
    // diverged from the in-process group: the CI bench smoke step
    // asserts all six identities.
    return devicesIdentical && storageIdentical && ioIdentical &&
                   compiledIdentical && checkpointIdentical &&
                   transportIdentical
               ? 0
               : 1;
}
