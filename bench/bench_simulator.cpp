/**
 * @file
 * Simulator performance (paper §VI: the GPU-accelerated simulator; our
 * CPU substitute uses the same condensed bit-packed storage). Reports
 * the host-side micro-op execution rate as the simulated memory scales
 * in crossbar count and rows — the quantities that determine the cost
 * of one broadcast logic op (O(crossbars * rows/64) word operations).
 */
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace pypim;
using namespace pypim::bench;

namespace
{

/** Execute a mixed micro-op heavy instruction (float add). */
void
simScaling(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    g.rows = static_cast<uint32_t>(state.range(1));
    Simulator sim(g);
    Driver drv(sim, g, Driver::Mode::Parallel);
    Rng rng(3);
    fillRegister(sim, 0, rng, true);
    fillRegister(sim, 1, rng, true);
    const RTypeInstr in = fullInstr(g, ROp::Add, DType::Float32);
    uint64_t ops = 0;
    for (auto _ : state) {
        sim.stats().clear();
        drv.execute(in);
        ops += sim.stats().totalOps();
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops));
    state.counters["simulated_threads"] =
        static_cast<double>(g.totalRows());
}

/** Raw logic micro-op execution rate (single periodic NOR). */
void
rawLogicOps(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    Simulator sim(g);
    const Word init = MicroOp::logicH(Gate::Init1, 0, 0,
                                      g.column(4, 0),
                                      g.partitions - 1, 1).encode();
    const Word nor = MicroOp::logicH(Gate::Nor, g.column(0, 0),
                                     g.column(1, 0), g.column(4, 0),
                                     g.partitions - 1, 1).encode();
    std::vector<Word> batch;
    for (int i = 0; i < 512; ++i) {
        batch.push_back(init);
        batch.push_back(nor);
    }
    for (auto _ : state)
        sim.performBatch(batch.data(), batch.size());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) *
        static_cast<int64_t>(batch.size()));
}

/** Move-op execution rate (H-tree transfers). */
void
moveOps(benchmark::State &state)
{
    Geometry g = benchGeometry(static_cast<uint32_t>(state.range(0)));
    Simulator sim(g);
    std::vector<Word> batch;
    batch.push_back(
        MicroOp::crossbarMask(Range(0, g.numCrossbars / 2 - 1, 1))
            .encode());
    for (int i = 0; i < 256; ++i)
        batch.push_back(MicroOp::move(g.numCrossbars / 2,
                                      static_cast<uint32_t>(i) %
                                          g.rows,
                                      0, 0, 1).encode());
    for (auto _ : state)
        sim.performBatch(batch.data(), batch.size());
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * 256);
}

} // namespace

BENCHMARK(simScaling)
    ->Args({4, 1024})
    ->Args({16, 1024})
    ->Args({64, 1024})
    ->Args({16, 64})
    ->Args({16, 256})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(rawLogicOps)->Arg(4)->Arg(16)->Arg(64);
BENCHMARK(moveOps)->Arg(16)->Arg(64);

BENCHMARK_MAIN();
