/**
 * @file
 * Ablation of the partition parallelism forms (paper §II-B, §III-D1,
 * Fig. 4 and Fig. 7): bit-serial vs bit-parallel element-parallel
 * arithmetic, swept over the partition count N.
 *
 * Three configurations per (op, N):
 *  - serial/no-partitions: every micro-op performs one gate (the
 *    partition-free AritPIM baseline),
 *  - serial/partitions: ripple algorithms with bulk-initialised lanes,
 *  - parallel: carry-lookahead addition (Brent-Kung) and carry-save
 *    multiplication using periodic semi-parallel operations.
 *
 * Expected shape: addition O(N) -> O(log N), multiplication
 * O(N^2) -> O(N log N) (AritPIM reports ~14x for N = 32 multiplication
 * against the no-partition baseline).
 */
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace pypim;
using namespace pypim::bench;

namespace
{

Geometry
ablationGeometry(uint32_t partitions)
{
    Geometry g;
    g.partitions = partitions;
    g.wordBits = partitions;
    g.cols = std::min<uint32_t>(1024, 64 * partitions);
    g.numCrossbars = 4;
    g.rows = 64;
    g.userRegs = std::min<uint32_t>(14, g.slots() - 18);
    return g;
}

uint64_t
latency(const Geometry &g, Driver::Mode mode, bool partitions, ROp op)
{
    CountingSink sink;
    Driver drv(sink, g, mode);
    drv.setPartitionsEnabled(partitions);
    drv.execute(fullInstr(g, op, DType::Int32));
    return sink.stats().totalOps();
}

/**
 * Trace-cache / fusion ablation (ISSUE 4): warm steady-state
 * throughput of one repeated instruction under the four cache/fusion
 * combinations, with the driver's observability counters (trace-cache
 * hits/misses, ops eliminated per fusion rewrite). --no-trace-cache
 * and --no-fusion drop the respective "on" rows, pinning the
 * ablation baseline.
 */
void
fusionCacheAblation(bool allowTraceCache, bool allowFusion)
{
    const Geometry g = benchGeometry(16);
    const RTypeInstr in = fullInstr(g, ROp::Mul, DType::Int32);
    std::printf("=== Trace-cache / fusion ablation (repeated int "
                "mul, %u crossbars) ===\n",
                g.numCrossbars);
    std::printf("%-26s %10s %8s | %8s %8s %8s %8s %8s %8s\n", "config",
                "instr/s", "speedup", "hits", "misses", "waw",
                "chain", "window", "stripe");
    double base = 0.0;
    StorageGauges gauges;
    for (const bool cache : {false, true}) {
        if (cache && !allowTraceCache)
            continue;
        for (const bool fusion : {false, true}) {
            if (!cache && fusion)
                continue;  // fusion only runs on cached traces
            if (fusion && !allowFusion)
                continue;
            Simulator sim(g, engineConfig());
            Rng rng(5);
            fillRegister(sim, 0, rng);
            fillRegister(sim, 1, rng);
            Driver drv(sim, g, Driver::Mode::Parallel);
            drv.setTraceCacheEnabled(cache);
            drv.setTraceFusionEnabled(fusion);
            drv.execute(in);  // warm: record + build
            sim.flush();
            const auto [reps, elapsed] = timedReps(
                [&] { drv.execute(in); }, [&] { sim.flush(); }, 0.2);
            const double rate =
                static_cast<double>(reps) / elapsed;
            if (base == 0.0)
                base = rate;
            const Stats &s = drv.stats();
            std::printf("%-26s %10.1f %7.2fx | %8llu %8llu %8llu "
                        "%8llu %8llu %8llu\n",
                        cache ? (fusion ? "trace cache + fusion"
                                        : "trace cache, no fusion")
                              : "stream cache only",
                        rate, rate / base,
                        static_cast<unsigned long long>(
                            s.traceCacheHits),
                        static_cast<unsigned long long>(
                            s.traceCacheMisses),
                        static_cast<unsigned long long>(s.fusionWaw),
                        static_cast<unsigned long long>(
                            s.fusionInitChain),
                        static_cast<unsigned long long>(
                            s.fusionWindow),
                        static_cast<unsigned long long>(
                            s.fusionWriteStripe));
            gauges = sim.storageGauges();
        }
    }
    // Footprint of the last (most featureful) configuration, plus the
    // process high-water mark: the storage-mode observability hook for
    // ablation runs (--storage=dense|paged flips the representation).
    std::printf("storage [%s]: blocks %llu/%llu present, %llu "
                "CoW-shared, resident %.2f MB; peak RSS %.1f MB\n\n",
                xbarStorageName(engineConfig().storage),
                static_cast<unsigned long long>(gauges.blocksPresent),
                static_cast<unsigned long long>(gauges.blocksTotal),
                static_cast<unsigned long long>(gauges.cowShared),
                static_cast<double>(gauges.residentBytes) / 1e6,
                static_cast<double>(peakRssKb()) / 1e3);
}

/**
 * Bulk I/O footer: one tensor round-trip on the configured engine,
 * reporting the driver's bulk-transfer observability counters
 * (PYPIM_BULK_IO=0 shows zero transfers — the element-wise oracle).
 */
void
bulkIoFooter()
{
    const Geometry g = benchGeometry(16);
    Device dev(g, Driver::Mode::Parallel, engineConfig());
    std::vector<int32_t> host(g.totalRows());
    Rng rng(13);
    for (auto &v : host)
        v = static_cast<int32_t>(rng.word());
    Tensor t = Tensor::fromVector(host, &dev);
    const bool ok = t.toIntVector() == host;
    const Stats &ds = dev.driver().stats();
    std::printf("bulk I/O [%s]: %llu reads, %llu writes, %llu words "
                "transposed, %llu drains over a %llu-element "
                "round-trip (%s)\n\n",
                dev.driver().bulkIoEnabled() ? "on" : "off",
                static_cast<unsigned long long>(ds.bulkReads),
                static_cast<unsigned long long>(ds.bulkWrites),
                static_cast<unsigned long long>(ds.ioWordsTransposed),
                static_cast<unsigned long long>(ds.ioDrains),
                static_cast<unsigned long long>(host.size()),
                ok ? "values verified" : "VALUE MISMATCH — BUG");
}

} // namespace

int
main(int argc, char **argv)
{
    // Ablation flag pair: strip before benchmark::Initialize (which
    // rejects unknown flags), after the shared engine flags.
    bool allowTraceCache = true, allowFusion = true;
    {
        int out = 1;
        for (int i = 1; i < argc; ++i) {
            const std::string arg(argv[i]);
            if (arg == "--no-trace-cache")
                allowTraceCache = false;
            else if (arg == "--no-fusion")
                allowFusion = false;
            else
                argv[out++] = argv[i];
        }
        argc = out;
    }
    applyEngineFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    printEngineBanner();

    fusionCacheAblation(allowTraceCache, allowFusion);
    bulkIoFooter();

    std::printf("=== Partition-parallelism ablation (paper Fig. 4 / "
                "II-B) ===\n");
    std::printf("latency in micro-ops (= cycles) per element-parallel "
                "instruction\n\n");
    for (const char *opName : {"addition", "multiplication"}) {
        const ROp op =
            std::string(opName) == "addition" ? ROp::Add : ROp::Mul;
        std::printf("%-14s %6s %12s %12s %12s %8s %8s\n", opName, "N",
                    "serial-noP", "serial", "parallel", "ser/par",
                    "noP/par");
        for (uint32_t n : {8u, 16u, 32u}) {
            const Geometry g = ablationGeometry(n);
            const uint64_t noPart =
                latency(g, Driver::Mode::Serial, false, op);
            const uint64_t serial =
                latency(g, Driver::Mode::Serial, true, op);
            const uint64_t parallel =
                latency(g, Driver::Mode::Parallel, true, op);
            std::printf("%-14s %6u %12llu %12llu %12llu %7.2fx "
                        "%7.2fx\n",
                        "", n,
                        static_cast<unsigned long long>(noPart),
                        static_cast<unsigned long long>(serial),
                        static_cast<unsigned long long>(parallel),
                        static_cast<double>(serial) / parallel,
                        static_cast<double>(noPart) / parallel);
        }
        std::printf("\n");
    }

    // Half-gates encoding ablation: how much larger would the
    // operation stream be if every periodic op had to be issued as
    // single gates (i.e., without the paper's compact partition
    // format)?
    {
        const Geometry g = ablationGeometry(32);
        const uint64_t withFormat =
            latency(g, Driver::Mode::Parallel, true, ROp::Add);
        const uint64_t withoutFormat =
            latency(g, Driver::Mode::Parallel, false, ROp::Add);
        std::printf("half-gates periodic encoding: parallel int add "
                    "needs %llu ops with the partition format vs %llu "
                    "single-gate ops without (%.2fx compression)\n",
                    static_cast<unsigned long long>(withFormat),
                    static_cast<unsigned long long>(withoutFormat),
                    static_cast<double>(withoutFormat) / withFormat);
    }

    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
