/**
 * @file
 * Shared infrastructure for the PyPIM benchmark suite.
 *
 * Every bench reproduces a piece of the paper's evaluation (§VI,
 * Fig. 13): it measures the micro-op/cycle counts of a workload on the
 * bit-accurate simulator, derives throughput with the paper's Eq. (1)
 * (parallelism = rows of the Table III deployment, 64M, at 300 MHz),
 * computes the theoretical-PIM bound from the same stream, and
 * reports the host driver's generation-rate headroom.
 *
 * The simulated crossbar COUNT does not affect the latency of
 * broadcast instruction streams, so benches run on a small memory
 * (16-64 crossbars) and report throughput at the 64k-crossbar
 * deployment scale — exactly the normalisation the paper's artifact
 * describes (appendix E / Eq. 1).
 */
#ifndef PYPIM_BENCH_BENCH_COMMON_HPP
#define PYPIM_BENCH_BENCH_COMMON_HPP

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "pim/pypim.hpp"
#include "sim/sink.hpp"
#include "theory/model.hpp"

namespace pypim::bench
{

/** Table III crossbar geometry with a simulation-friendly memory. */
inline Geometry
benchGeometry(uint32_t crossbars = 16)
{
    Geometry g;
    g.numCrossbars = crossbars;
    return g;
}

/**
 * Process-wide execution-engine selection for bench simulators.
 * Defaults from the PYPIM_ENGINE / PYPIM_THREADS environment (serial
 * when unset); overridable on the command line via applyEngineFlags.
 */
inline EngineConfig &
engineConfig()
{
    static EngineConfig cfg = EngineConfig::fromEnv();
    return cfg;
}

/**
 * Output path of the machine-readable benchmark record (--json=PATH);
 * empty when no JSON output was requested.
 */
inline std::string &
jsonOutPath()
{
    static std::string path;
    return path;
}

/**
 * Parse and strip --engine=serial|sharded|trace, --threads=N,
 * --pipeline=on|off, --trace-cache=on|off, --devices=N,
 * --affinity=on|off, --storage=dense|paged, --bulk-io=on|off,
 * --compiled-replay=on|off and --json=PATH from argv (before
 * benchmark::Initialize, which rejects unknown flags), storing the
 * result in engineConfig() / jsonOutPath(). Invalid values abort,
 * exactly like the PYPIM_ENGINE / PYPIM_THREADS / PYPIM_PIPELINE /
 * PYPIM_TRACE_CACHE / PYPIM_DEVICES / PYPIM_AFFINITY /
 * PYPIM_XBAR_STORAGE / PYPIM_BULK_IO / PYPIM_COMPILED_REPLAY
 * environment path — a typo must never silently benchmark the wrong
 * engine.
 */
inline void
applyEngineFlags(int &argc, char **argv)
{
    EngineConfig &cfg = engineConfig();
    int out = 1;
    for (int i = 1; i < argc; ++i) {
        const std::string arg(argv[i]);
        if (arg.rfind("--json=", 0) == 0) {
            jsonOutPath() = arg.substr(7);
            fatalIf(jsonOutPath().empty(),
                    "--json=: expected a file path");
        } else if (arg.rfind("--trace-cache=", 0) == 0) {
            const std::string v = arg.substr(14);
            if (v == "on" || v == "1")
                cfg.traceCache = true;
            else if (v == "off" || v == "0")
                cfg.traceCache = false;
            else
                fatal("--trace-cache=" + v + ": expected on|off");
        } else if (arg.rfind("--pipeline=", 0) == 0) {
            const std::string v = arg.substr(11);
            if (v == "on" || v == "1")
                cfg.pipeline = true;
            else if (v == "off" || v == "0")
                cfg.pipeline = false;
            else
                fatal("--pipeline=" + v + ": expected on|off");
        } else if (arg.rfind("--engine=", 0) == 0) {
            const std::string v = arg.substr(9);
            if (v == "sharded")
                cfg.kind = EngineKind::Sharded;
            else if (v == "trace")
                cfg.kind = EngineKind::Trace;
            else if (v == "serial")
                cfg.kind = EngineKind::Serial;
            else
                fatal("--engine=" + v +
                      ": unknown engine (expected serial|sharded|"
                      "trace)");
        } else if (arg.rfind("--threads=", 0) == 0) {
            const char *s = arg.c_str() + 10;
            char *end = nullptr;
            const long n = std::strtol(s, &end, 10);
            fatalIf(*s == '\0' || *end != '\0' || n < 0 ||
                        n > 1 << 20,
                    "--threads=" + arg.substr(10) +
                        ": expected a non-negative integer");
            cfg.threads = static_cast<uint32_t>(n);
        } else if (arg.rfind("--devices=", 0) == 0) {
            const char *s = arg.c_str() + 10;
            char *end = nullptr;
            const long n = std::strtol(s, &end, 10);
            fatalIf(*s == '\0' || *end != '\0' || n < 1 ||
                        n > 1 << 16 || (n & (n - 1)) != 0,
                    "--devices=" + arg.substr(10) +
                        ": expected a power-of-two sub-device count");
            cfg.devices = static_cast<uint32_t>(n);
        } else if (arg.rfind("--affinity=", 0) == 0) {
            const std::string v = arg.substr(11);
            if (v == "on" || v == "1")
                cfg.affinity = true;
            else if (v == "off" || v == "0")
                cfg.affinity = false;
            else
                fatal("--affinity=" + v + ": expected on|off");
        } else if (arg.rfind("--storage=", 0) == 0) {
            const std::string v = arg.substr(10);
            if (v == "dense")
                cfg.storage = XbarStorage::Dense;
            else if (v == "paged")
                cfg.storage = XbarStorage::Paged;
            else
                fatal("--storage=" + v + ": expected dense|paged");
        } else if (arg.rfind("--bulk-io=", 0) == 0) {
            const std::string v = arg.substr(10);
            if (v == "on" || v == "1")
                cfg.bulkIo = true;
            else if (v == "off" || v == "0")
                cfg.bulkIo = false;
            else
                fatal("--bulk-io=" + v + ": expected on|off");
        } else if (arg.rfind("--compiled-replay=", 0) == 0) {
            const std::string v = arg.substr(18);
            if (v == "on" || v == "1")
                cfg.compiledReplay = true;
            else if (v == "off" || v == "0")
                cfg.compiledReplay = false;
            else
                fatal("--compiled-replay=" + v + ": expected on|off");
        } else if (arg.rfind("--transport=", 0) == 0) {
            const std::string v = arg.substr(12);
            if (v == "inproc")
                cfg.transport = TransportKind::Inproc;
            else if (v == "socket")
                cfg.transport = TransportKind::Socket;
            else
                fatal("--transport=" + v + ": expected inproc|socket");
        } else {
            argv[out++] = argv[i];
        }
    }
    argc = out;
}

/** One-line engine banner for bench output. */
inline void
printEngineBanner()
{
    const EngineConfig &cfg = engineConfig();
    std::printf("simulator engine: %s", engineKindName(cfg.kind));
    if (cfg.kind == EngineKind::Sharded)
        std::printf(" (%u threads%s)", cfg.resolvedThreads(),
                    cfg.affinity ? ", pinned" : "");
    std::printf(", pipeline %s", cfg.pipeline ? "on" : "off");
    std::printf(", trace cache %s", cfg.traceCache ? "on" : "off");
    std::printf(", %s storage", xbarStorageName(cfg.storage));
    std::printf(", bulk I/O %s", cfg.bulkIo ? "on" : "off");
    std::printf(", compiled replay %s",
                cfg.compiledReplay ? "on" : "off");
    std::printf(", %s transport", transportKindName(cfg.transport));
    if (cfg.devices > 1)
        std::printf(", %u sub-devices", cfg.devices);
    std::printf("  [--engine=serial|sharded|trace --threads=N "
                "--pipeline=on|off --trace-cache=on|off --devices=N "
                "--affinity=on|off --storage=dense|paged "
                "--bulk-io=on|off --compiled-replay=on|off "
                "--transport=inproc|socket --json=PATH "
                "or PYPIM_ENGINE/PYPIM_THREADS/PYPIM_PIPELINE/"
                "PYPIM_TRACE_CACHE/PYPIM_DEVICES/PYPIM_AFFINITY/"
                "PYPIM_XBAR_STORAGE/PYPIM_BULK_IO/"
                "PYPIM_COMPILED_REPLAY/PYPIM_TRANSPORT]\n");
}

/**
 * Minimal JSON emitter for the machine-readable bench records
 * (BENCH_<name>.json): nested objects/arrays with comma bookkeeping;
 * keys and string values are plain identifiers, so no escaping is
 * needed.
 */
class Json
{
  public:
    void
    beginObject(const char *key = nullptr)
    {
        open(key, '{');
    }
    void
    beginArray(const char *key = nullptr)
    {
        open(key, '[');
    }
    void
    end()
    {
        s_ += stack_.back();
        stack_.pop_back();
        comma_ = true;
    }
    void
    field(const char *key, const char *v)
    {
        prefix(key);
        s_ += '"';
        s_ += v;
        s_ += '"';
    }
    void
    field(const char *key, const std::string &v)
    {
        field(key, v.c_str());
    }
    void
    field(const char *key, double v)
    {
        prefix(key);
        char buf[32];
        std::snprintf(buf, sizeof buf, "%.6g", v);
        s_ += buf;
    }
    void
    field(const char *key, uint64_t v)
    {
        prefix(key);
        s_ += std::to_string(v);
    }
    void
    field(const char *key, uint32_t v)
    {
        field(key, static_cast<uint64_t>(v));
    }
    void
    field(const char *key, bool v)
    {
        prefix(key);
        s_ += v ? "true" : "false";
    }

    /** Write the document to @p path (fatal on I/O failure). */
    void
    writeTo(const std::string &path) const
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        fatalIf(f == nullptr, "cannot open " + path + " for writing");
        std::fputs(s_.c_str(), f);
        std::fputc('\n', f);
        std::fclose(f);
        std::printf("wrote benchmark record to %s\n", path.c_str());
    }

    const std::string &str() const { return s_; }

  private:
    void
    prefix(const char *key)
    {
        if (comma_)
            s_ += ", ";
        comma_ = true;
        if (key) {
            s_ += '"';
            s_ += key;
            s_ += "\": ";
        }
    }
    void
    open(const char *key, char c)
    {
        prefix(key);
        s_ += c;
        stack_.push_back(c == '{' ? '}' : ']');
        comma_ = false;
    }

    std::string s_;
    std::vector<char> stack_;
    bool comma_ = false;
};

/** Common config header of every JSON bench record. */
inline void
jsonConfig(Json &j, const Geometry &g)
{
    const EngineConfig &cfg = engineConfig();
    j.beginObject("config");
    j.field("engine", engineKindName(cfg.kind));
    j.field("threads", cfg.resolvedThreads());
    j.field("pipeline", cfg.pipeline);
    j.field("trace_cache", cfg.traceCache);
    j.field("devices", cfg.devices);
    j.field("affinity", cfg.affinity);
    j.field("storage", xbarStorageName(cfg.storage));
    j.field("bulk_io", cfg.bulkIo);
    j.field("compiled_replay", cfg.compiledReplay);
    j.field("transport", transportKindName(cfg.transport));
    j.field("crossbars", g.numCrossbars);
    j.field("rows", g.rows);
    j.field("partitions", g.partitions);
    j.end();
}

/**
 * One "KEY: N kB" line from /proc/self/status; 0 when the file or the
 * key is unavailable (non-Linux hosts) — callers print the value as
 * best-effort observability, never gate on it.
 */
inline uint64_t
procStatusKb(const char *key)
{
    std::FILE *f = std::fopen("/proc/self/status", "r");
    if (f == nullptr)
        return 0;
    const size_t klen = std::strlen(key);
    char line[256];
    uint64_t kb = 0;
    while (std::fgets(line, sizeof line, f)) {
        if (std::strncmp(line, key, klen) == 0) {
            kb = std::strtoull(line + klen, nullptr, 10);
            break;
        }
    }
    std::fclose(f);
    return kb;
}

/** Peak resident set size [kB] of this process (VmHWM); 0 if unknown. */
inline uint64_t
peakRssKb()
{
    return procStatusKb("VmHWM:");
}

/** Current resident set size [kB] (VmRSS); 0 if unknown. */
inline uint64_t
currentRssKb()
{
    return procStatusKb("VmRSS:");
}

/** Storage-gauge sub-object of a JSON bench record. */
inline void
jsonStorageGauges(Json &j, const char *key, const StorageGauges &g)
{
    j.beginObject(key);
    j.field("blocks_total", g.blocksTotal);
    j.field("blocks_present", g.blocksPresent);
    j.field("blocks_elided", g.blocksElided);
    j.field("cow_shared", g.cowShared);
    j.field("resident_bytes", g.residentBytes);
    j.end();
}

/**
 * Timing skeleton shared by the end-to-end pipeline measurements:
 * invoke @p body repeatedly until @p minSeconds of wall clock have
 * elapsed, then @p drain — inside the timed window, so asynchronous
 * sinks pay for all deferred replay — and return {reps, seconds}.
 */
template <typename BodyFn, typename DrainFn>
inline std::pair<uint64_t, double>
timedReps(BodyFn &&body, DrainFn &&drain, double minSeconds)
{
    using clock = std::chrono::steady_clock;
    uint64_t reps = 0;
    const auto t0 = clock::now();
    double elapsed = 0.0;
    do {
        body();
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    } while (elapsed < minSeconds);
    drain();
    elapsed = std::chrono::duration<double>(clock::now() - t0).count();
    return {reps, elapsed};
}

/** Full-scale deployment (Table III: 64k crossbars, 64M rows). */
inline const Geometry &
deployment()
{
    static const Geometry g = tableIIIGeometry();
    return g;
}

/** One row of a Figure-13-style result table. */
struct Fig13Row
{
    std::string name;
    uint64_t measuredCycles = 0;
    uint64_t theoryCycles = 0;      //!< amortised-INIT lower bound
    uint64_t conventionCycles = 0;  //!< AritPIM-convention count
    uint64_t streamOps = 0;     //!< micro-ops in the measured stream
    double driverRate = 0.0;    //!< host micro-op generation rate [1/s]
};

/** Print a Figure-13 panel plus the paper's summary statistics. */
inline void
printFig13(const char *title, const std::vector<Fig13Row> &rows)
{
    const Geometry &dep = deployment();
    const double rowsP = static_cast<double>(dep.totalRows());
    std::printf("\n=== %s ===\n", title);
    std::printf("Eq. (1): throughput = parallelism (%.0fM rows) / "
                "latency [cycles] * %.0f MHz\n",
                rowsP / 1e6, dep.clockHz / 1e6);
    std::printf("gapA = overhead vs the AritPIM-convention count "
                "(gates + inits; the paper's 5%%/16%% metric);\n"
                "gapL = distance from the amortised-INIT lower "
                "bound\n");
    std::printf("%-18s %10s %10s %6s %6s | %12s %12s %12s %9s\n",
                "benchmark", "cycles", "theory", "gapA", "gapL",
                "PyPIM[OP/s]", "theory[OP/s]", "driver[OP/s]",
                "headroom");
    double gapASum = 0.0, gapAMax = 0.0, headMin = 1e300;
    for (const auto &r : rows) {
        const double pTput =
            theory::throughput(r.measuredCycles, dep.totalRows(), dep);
        const double tTput =
            theory::throughput(r.theoryCycles, dep.totalRows(), dep);
        const double dTput =
            rowsP * r.driverRate / static_cast<double>(r.streamOps);
        const double gapA =
            100.0 * (static_cast<double>(r.measuredCycles) /
                         static_cast<double>(r.conventionCycles) -
                     1.0);
        const double gapL =
            100.0 * (static_cast<double>(r.measuredCycles) /
                         static_cast<double>(r.theoryCycles) -
                     1.0);
        const double headroom = dTput / pTput;
        gapASum += gapA;
        gapAMax = std::max(gapAMax, gapA);
        headMin = std::min(headMin, headroom);
        std::printf("%-18s %10llu %10llu %5.1f%% %5.0f%% | %12.3e "
                    "%12.3e %12.3e %8.2fx\n",
                    r.name.c_str(),
                    static_cast<unsigned long long>(r.measuredCycles),
                    static_cast<unsigned long long>(r.theoryCycles),
                    gapA, gapL, pTput, tTput, dTput, headroom);
    }
    std::printf("summary: mean integration overhead %.2f%% "
                "(worst %.2f%%) [paper: 5%% / 16%%]; min driver "
                "headroom %.2fx [paper: 6.8x worst]\n",
                gapASum / static_cast<double>(rows.size()), gapAMax,
                headMin);
}

/**
 * Host micro-op generation rate [ops/s]: repeatedly translate the
 * instruction stream emitted by @p emitAll into a memory buffer (the
 * artifact's "ideal chip" harness, appendix E).
 */
template <typename Fn>
double
generationRate(const Geometry &geo, Driver::Mode mode, Fn &&emitAll,
               double minSeconds = 0.2)
{
    BufferSink sink(1 << 16);
    Driver drv(sink, geo, mode);
    emitAll(drv);  // warm-up; also sizes one repetition
    const uint64_t opsPerRep = sink.total();
    using clock = std::chrono::steady_clock;
    uint64_t reps = 0;
    const auto t0 = clock::now();
    double elapsed = 0.0;
    do {
        emitAll(drv);
        ++reps;
        elapsed = std::chrono::duration<double>(clock::now() - t0)
                      .count();
    } while (elapsed < minSeconds);
    return static_cast<double>(reps * opsPerRep) / elapsed;
}

/** Fill register @p slot of every thread with random words. */
inline void
fillRegister(Simulator &sim, uint32_t slot, Rng &rng,
             bool floatData = false)
{
    const Geometry &g = sim.geometry();
    for (uint32_t w = 0; w < g.numCrossbars; ++w) {
        for (uint32_t r = 0; r < g.rows; ++r) {
            uint32_t v = rng.word();
            if (floatData) {
                // Finite, well-scaled floats.
                union { uint32_t u; float f; } x;
                x.f = (static_cast<float>(v % 100000) - 50000.0f) / 7.0f;
                v = x.u;
            }
            sim.crossbar(w).writeRow(slot, v, r);
        }
    }
}

/** Full-mask R-type instruction for the given geometry. */
inline RTypeInstr
fullInstr(const Geometry &g, ROp op, DType dt, uint8_t rd = 2,
          uint8_t ra = 0, uint8_t rb = 1, uint8_t rc = 3)
{
    RTypeInstr in;
    in.op = op;
    in.dtype = dt;
    in.rd = rd;
    in.ra = ra;
    in.rb = rb;
    in.rc = rc;
    in.warps = Range::all(g.numCrossbars);
    in.rows = Range::all(g.rows);
    return in;
}

} // namespace pypim::bench

#endif // PYPIM_BENCH_BENCH_COMMON_HPP
