/**
 * @file
 * Table II regenerated: the supported R-type operation matrix with the
 * measured latency (micro-ops = cycles per element-parallel
 * instruction) and the theoretical bound for every (operation, dtype)
 * combination, in both driver modes.
 */
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace pypim;
using namespace pypim::bench;

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);

    const Geometry g = benchGeometry(4);
    std::printf("=== Table II: supported R-type operations "
                "(latency in cycles per instruction) ===\n");
    std::printf("%-10s | %22s | %22s\n", "", "int32 (ser/par/theory)",
                "float32 (ser/par/theory)");
    const ROp ops[] = {ROp::Add, ROp::Sub, ROp::Mul, ROp::Div,
                       ROp::Mod, ROp::Neg, ROp::Lt, ROp::Le, ROp::Gt,
                       ROp::Ge, ROp::Eq, ROp::Ne, ROp::BitNot,
                       ROp::BitAnd, ROp::BitOr, ROp::BitXor, ROp::Sign,
                       ROp::Zero, ROp::Abs, ROp::Mux, ROp::Copy};
    for (ROp op : ops) {
        std::printf("%-10s |", ropName(op));
        for (DType dt : {DType::Int32, DType::Float32}) {
            if (!ropSupported(op, dt)) {
                std::printf(" %22s |", "-");
                continue;
            }
            uint64_t lat[2];
            for (int m = 0; m < 2; ++m) {
                CountingSink sink;
                Driver drv(sink, g,
                           m ? Driver::Mode::Parallel
                             : Driver::Mode::Serial);
                drv.execute(fullInstr(g, op, dt));
                lat[m] = sink.stats().totalOps();
            }
            const uint64_t bound = theory::instructionCycles(
                g, /*parallelMode=*/true, op, dt);
            std::printf(" %6llu/%6llu/%6llu |",
                        static_cast<unsigned long long>(lat[0]),
                        static_cast<unsigned long long>(lat[1]),
                        static_cast<unsigned long long>(bound));
        }
        std::printf("\n");
    }
    std::printf("\nall %zu operations of Table II are implemented for "
                "their supported dtypes\n", std::size(ops));

    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
