/**
 * @file
 * Figure 13 (top panel): elementwise arithmetic throughput — Int Add,
 * Int Mult, Int <, FP Add, FP Mult (plus the remaining Table II
 * arithmetic for completeness). Three series per benchmark, as in the
 * paper: PyPIM (measured micro-ops on the bit-accurate simulator),
 * Theoretical PIM (gate-level lower bound), and the maximal throughput
 * supported by the host driver.
 *
 * The google-benchmark section additionally reports the host-side
 * wall time of simulating one full-mask instruction.
 */
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace pypim;
using namespace pypim::bench;

namespace
{

struct Case
{
    const char *name;
    ROp op;
    DType dt;
};

const Case kFigureCases[] = {
    {"Int Add", ROp::Add, DType::Int32},
    {"Int Mult", ROp::Mul, DType::Int32},
    {"Int <", ROp::Lt, DType::Int32},
    {"FP Add", ROp::Add, DType::Float32},
    {"FP Mult", ROp::Mul, DType::Float32},
};

const Case kExtraCases[] = {
    {"Int Sub", ROp::Sub, DType::Int32},
    {"Int Div", ROp::Div, DType::Int32},
    {"Int Mod", ROp::Mod, DType::Int32},
    {"FP Sub", ROp::Sub, DType::Float32},
    {"FP Div", ROp::Div, DType::Float32},
    {"FP <", ROp::Lt, DType::Float32},
};

Fig13Row
runCase(Simulator &sim, Driver &drv, const Case &c)
{
    const Geometry &g = sim.geometry();
    const RTypeInstr in = fullInstr(g, c.op, c.dt);
    sim.stats().clear();
    drv.execute(in);
    const Stats d = sim.stats();
    Fig13Row row;
    row.name = c.name;
    row.measuredCycles = d.totalCycles();
    row.theoryCycles = theory::theoreticalCycles(d, g);
    row.conventionCycles = theory::conventionCycles(d, g);
    row.streamOps = d.totalOps();
    row.driverRate = generationRate(
        g, drv.mode(), [&](Driver &dd) { dd.execute(in); });
    return row;
}

void
verifyCorrectness(Simulator &sim, Driver &drv)
{
    // Spot-check the measured operations against host arithmetic on a
    // few threads (the full verification lives in the test suite).
    const Geometry &g = sim.geometry();
    drv.execute(fullInstr(g, ROp::Add, DType::Int32, 4, 0, 1));
    drv.execute(fullInstr(g, ROp::Mul, DType::Int32, 5, 0, 1));
    for (uint32_t t = 0; t < 32; ++t) {
        const uint32_t w = t % g.numCrossbars;
        const uint32_t r = (t * 37) % g.rows;
        const uint32_t a = sim.crossbar(w).read(0, r);
        const uint32_t b = sim.crossbar(w).read(1, r);
        if (sim.crossbar(w).read(4, r) != a + b ||
            sim.crossbar(w).read(5, r) != a * b) {
            std::fprintf(stderr, "verification FAILED at thread %u\n",
                         t);
            std::exit(1);
        }
    }
    std::printf("correctness spot-check: PASS (32 threads, add/mul)\n");
}

/** google-benchmark: wall time of simulating one instruction. */
void
simulateInstr(benchmark::State &state, ROp op, DType dt)
{
    const Geometry g = benchGeometry(
        static_cast<uint32_t>(state.range(0)));
    Simulator sim(g, engineConfig());
    Driver drv(sim, g, Driver::Mode::Parallel);
    Rng rng(1);
    fillRegister(sim, 0, rng, dt == DType::Float32);
    fillRegister(sim, 1, rng, dt == DType::Float32);
    const RTypeInstr in = fullInstr(g, op, dt);
    for (auto _ : state) {
        drv.execute(in);
        benchmark::DoNotOptimize(sim);
    }
    state.SetItemsProcessed(
        static_cast<int64_t>(state.iterations()) * g.totalRows());
}

} // namespace

BENCHMARK_CAPTURE(simulateInstr, int_add, ROp::Add, DType::Int32)
    ->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(simulateInstr, int_mul, ROp::Mul, DType::Int32)
    ->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(simulateInstr, fp_add, ROp::Add, DType::Float32)
    ->Arg(16)->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(simulateInstr, fp_mul, ROp::Mul, DType::Float32)
    ->Arg(16)->Unit(benchmark::kMillisecond);

int
main(int argc, char **argv)
{
    applyEngineFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    printEngineBanner();

    const Geometry g = benchGeometry();
    Simulator sim(g, engineConfig());
    Driver drv(sim, g, Driver::Mode::Parallel);
    Rng rng(42);
    fillRegister(sim, 0, rng, false);
    fillRegister(sim, 1, rng, false);

    std::vector<Fig13Row> figure;
    std::vector<Fig13Row> extra;
    for (const Case &c : kFigureCases) {
        if (c.dt == DType::Float32) {
            fillRegister(sim, 0, rng, true);
            fillRegister(sim, 1, rng, true);
        }
        figure.push_back(runCase(sim, drv, c));
    }
    for (const Case &c : kExtraCases) {
        fillRegister(sim, 0, rng, c.dt == DType::Float32);
        fillRegister(sim, 1, rng, c.dt == DType::Float32);
        if (c.op == ROp::Div || c.op == ROp::Mod) {
            // Avoid division by zero in the workload.
            for (uint32_t w = 0; w < g.numCrossbars; ++w)
                for (uint32_t r = 0; r < g.rows; ++r)
                    if (sim.crossbar(w).read(1, r) == 0)
                        sim.crossbar(w).writeRow(1, 7, r);
        }
        extra.push_back(runCase(sim, drv, c));
    }

    printFig13("Figure 13 (top): throughput comparison", figure);
    printFig13("Table II extras (not shown in the paper's figure)",
               extra);

    fillRegister(sim, 0, rng, false);
    fillRegister(sim, 1, rng, false);
    verifyCorrectness(sim, drv);

    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
