/**
 * @file
 * Host-driver throughput (paper §VI-B "Host Driver Runtime" and
 * artifact appendix E): micro-operations are rerouted to a memory
 * buffer instead of the simulator, measuring the maximal rate at which
 * the host can generate the stream. The chip consumes one broadcast
 * op per cycle at 300 MHz; as long as the generation rate exceeds
 * that, "a hardware controller is not necessary" — the paper's claim.
 *
 * The overlap report extends the measurement to the asynchronous
 * pipeline (sim/pipeline.hpp): how much of the translation cost
 * disappears end-to-end when the driver streams batches to the
 * simulator through submitBatch instead of blocking in performBatch.
 */
#include <benchmark/benchmark.h>

#include "bench_common.hpp"

using namespace pypim;
using namespace pypim::bench;

namespace
{

struct Case
{
    const char *name;
    ROp op;
    DType dt;
};

const Case kCases[] = {
    {"int add", ROp::Add, DType::Int32},
    {"int mul", ROp::Mul, DType::Int32},
    {"int div", ROp::Div, DType::Int32},
    {"int <", ROp::Lt, DType::Int32},
    {"fp add", ROp::Add, DType::Float32},
    {"fp mul", ROp::Mul, DType::Float32},
    {"fp div", ROp::Div, DType::Float32},
    {"mux", ROp::Mux, DType::Int32},
};

/**
 * End-to-end seconds per instruction through @p sink with the stream
 * cache off (every rep translates for real). flush() is inside the
 * timed window, so pipelined sinks pay for deferred replay.
 */
double
secondsPerInstr(const Geometry &g, OperationSink &sink,
                const RTypeInstr &in, double minSeconds = 0.2)
{
    Driver drv(sink, g, Driver::Mode::Parallel);
    drv.setStreamCacheEnabled(false);
    drv.execute(in);  // warm-up
    sink.flush();
    const auto [reps, elapsed] = timedReps(
        [&] { drv.execute(in); }, [&] { sink.flush(); }, minSeconds);
    return elapsed / static_cast<double>(reps);
}

/**
 * Overlap-efficiency report for the asynchronous pipeline: per
 * kernel, the translation-only cost (ideal-chip BufferSink), the
 * synchronous translate-then-replay end-to-end cost, and the
 * pipelined cost; the last column is the fraction of translation
 * time the pipeline hid behind replay, (Tsync - Tpipe) / Ttranslate
 * (1.0 = translation fully hidden; ~0 on a single-core host where
 * the stages time-share).
 */
void
overlapReport()
{
    const Geometry g = benchGeometry(64);
    EngineConfig cfg = engineConfig();
    cfg.kind = EngineKind::Sharded;
    std::printf("\n=== Pipeline overlap efficiency (sharded, %u "
                "threads, 64 crossbars, stream cache off) ===\n",
                cfg.resolvedThreads());
    std::printf("%-10s %16s %16s %16s %10s\n", "kernel",
                "translate [ms]", "sync e2e [ms]", "piped e2e [ms]",
                "hidden");
    for (const Case &c : kCases) {
        const RTypeInstr in = fullInstr(g, c.op, c.dt);
        BufferSink buf(1 << 16);
        const double tT = secondsPerInstr(g, buf, in);
        double tS, tP;
        {
            Simulator sim(g, cfg.withPipeline(false));
            tS = secondsPerInstr(g, sim, in);
        }
        {
            Simulator sim(g, cfg.withPipeline(true));
            tP = secondsPerInstr(g, sim, in);
        }
        const double hidden =
            std::clamp((tS - tP) / tT, 0.0, 1.0);
        std::printf("%-10s %16.3f %16.3f %16.3f %9.0f%%\n", c.name,
                    tT * 1e3, tS * 1e3, tP * 1e3, 100.0 * hidden);
    }
    std::printf("(hidden = fraction of the translation stage "
                "overlapped with replay; needs free host cores)\n");
}

/**
 * Steady-state warm-cache throughput: the ISSUE 4 acceptance gauge.
 * One repeated instruction (int Mul by default: the heaviest common
 * kernel) runs end-to-end against the simulator in four driver
 * configurations — translation every rep (all caches off), the
 * stream cache alone (byte replay, full decode every rep), and the
 * trace cache on top (decode-once shared handles) without and with
 * the window fusion pass. Every configuration's destination register
 * is checksummed: cached and fused replay MUST be bit-identical to
 * fresh translation, and the function fails (returns false) when it
 * is not — the CI bench smoke step relies on that.
 */
bool
steadyStateReport(double minSeconds = 0.3)
{
    struct Config
    {
        const char *name;
        bool streamCache, traceCache, fusion;
    };
    const Config kConfigs[] = {
        {"no caches (translate)", false, false, false},
        {"stream cache only", true, false, false},
        {"trace cache, no fusion", true, true, false},
        {"trace cache + fusion", true, true, true},
    };

    const Geometry g = benchGeometry(16);
    const EngineConfig cfg = engineConfig();
    const RTypeInstr in = fullInstr(g, ROp::Mul, DType::Int32);
    std::printf("\n=== Warm-cache steady-state throughput (repeated "
                "int mul, %u crossbars, engine %s%s) ===\n",
                g.numCrossbars, engineKindName(cfg.kind),
                cfg.pipeline ? ", pipelined" : "");
    std::printf("%-24s %12s %9s %8s %8s %8s %8s\n", "configuration",
                "instr/s", "speedup", "hits", "waw", "chain",
                "window");

    double rates[4] = {};
    uint64_t checksums[4] = {};
    struct Counters
    {
        uint64_t hits, waw, chain, window;
    } counters[4] = {};
    for (size_t c = 0; c < 4; ++c) {
        const Config &conf = kConfigs[c];
        Simulator sim(g, cfg);
        Rng rng(1234);
        fillRegister(sim, 0, rng);
        fillRegister(sim, 1, rng);
        Driver drv(sim, g, Driver::Mode::Parallel);
        drv.setStreamCacheEnabled(conf.streamCache);
        drv.setTraceCacheEnabled(conf.traceCache);
        drv.setTraceFusionEnabled(conf.fusion);
        // Warm: record + build + first replay outside the window.
        drv.execute(in);
        drv.execute(in);
        sim.flush();
        const auto [reps, elapsed] = timedReps(
            [&] { drv.execute(in); }, [&] { sim.flush(); },
            minSeconds);
        rates[c] = static_cast<double>(reps) / elapsed;
        counters[c] = {drv.stats().traceCacheHits,
                       drv.stats().fusionWaw,
                       drv.stats().fusionInitChain,
                       drv.stats().fusionWindow};
        uint64_t ck = 0;
        for (uint32_t xb = 0; xb < g.numCrossbars; ++xb)
            for (uint32_t row = 0; row < g.rows; row += 3)
                ck = ck * 1099511628211ull ^
                     sim.crossbar(xb).read(in.rd, row);
        checksums[c] = ck;
        std::printf("%-24s %12.1f %8.2fx %8llu %8llu %8llu %8llu\n",
                    conf.name, rates[c],
                    rates[1] > 0 ? rates[c] / rates[1] : 0.0,
                    static_cast<unsigned long long>(counters[c].hits),
                    static_cast<unsigned long long>(counters[c].waw),
                    static_cast<unsigned long long>(counters[c].chain),
                    static_cast<unsigned long long>(
                        counters[c].window));
    }
    const bool identical = checksums[0] == checksums[1] &&
                           checksums[0] == checksums[2] &&
                           checksums[0] == checksums[3];
    const double speedup = rates[3] / rates[1];
    std::printf("warm-cache speedup (trace cache + fusion over "
                "stream cache only): %.2fx [gauge: >=1.3x]; results "
                "bit-identical: %s\n",
                speedup, identical ? "yes" : "NO — BUG");

    if (!jsonOutPath().empty()) {
        Json j;
        j.beginObject();
        j.field("bench", "bench_driver");
        jsonConfig(j, g);
        j.beginArray("steady_state");
        for (size_t c = 0; c < 4; ++c) {
            j.beginObject();
            j.field("name", kConfigs[c].name);
            j.field("instr_per_s", rates[c]);
            j.field("speedup_vs_stream_cache",
                    rates[1] > 0 ? rates[c] / rates[1] : 0.0);
            j.field("trace_cache_hits", counters[c].hits);
            j.field("fusion_waw", counters[c].waw);
            j.field("fusion_init_chain", counters[c].chain);
            j.field("fusion_window", counters[c].window);
            j.end();
        }
        j.end();
        j.field("warm_cache_speedup", speedup);
        j.field("bit_identical", identical);
        j.end();
        j.writeTo(jsonOutPath());
    }
    return identical;
}

void
generate(benchmark::State &state, ROp op, DType dt)
{
    const Geometry g = benchGeometry();
    BufferSink sink(1 << 16);
    Driver drv(sink, g, Driver::Mode::Parallel);
    const RTypeInstr in = fullInstr(g, op, dt);
    uint64_t ops = 0;
    for (auto _ : state) {
        const uint64_t before = sink.total();
        drv.execute(in);
        ops += sink.total() - before;
    }
    state.SetItemsProcessed(static_cast<int64_t>(ops));
    state.counters["micro-ops/instr"] = static_cast<double>(
        ops / std::max<uint64_t>(1, state.iterations()));
}

} // namespace

BENCHMARK_CAPTURE(generate, int_add, ROp::Add, DType::Int32);
BENCHMARK_CAPTURE(generate, int_mul, ROp::Mul, DType::Int32);
BENCHMARK_CAPTURE(generate, fp_add, ROp::Add, DType::Float32);
BENCHMARK_CAPTURE(generate, fp_mul, ROp::Mul, DType::Float32);
BENCHMARK_CAPTURE(generate, fp_div, ROp::Div, DType::Float32);

int
main(int argc, char **argv)
{
    applyEngineFlags(argc, argv);
    benchmark::Initialize(&argc, argv);
    // The driver bench streams into a memory buffer (no simulator),
    // but accepts the shared engine flags so sweep scripts can pass
    // one uniform command line to every bench target.
    printEngineBanner();

    const Geometry g = benchGeometry();
    const double chipRate = static_cast<double>(g.clockHz);

    std::printf("=== Host driver maximal throughput (artifact "
                "appendix E) ===\n");
    std::printf("chip consumption rate: %.0f M micro-ops/s "
                "(1 op/cycle at %.0f MHz)\n",
                chipRate / 1e6, chipRate / 1e6);
    std::printf("%-10s %16s %16s %10s\n", "kernel", "ops/instr",
                "gen rate [M/s]", "headroom");
    double headMin = 1e300;
    for (const Case &c : kCases) {
        const RTypeInstr in = fullInstr(g, c.op, c.dt);
        // Ops per instruction.
        CountingSink cnt;
        {
            Driver d(cnt, g, Driver::Mode::Parallel);
            d.execute(in);
        }
        const uint64_t perInstr = cnt.stats().totalOps();
        const double rate = generationRate(
            g, Driver::Mode::Parallel,
            [&](Driver &dd) { dd.execute(in); });
        const double headroom = rate / chipRate;
        headMin = std::min(headMin, headroom);
        std::printf("%-10s %16llu %16.1f %9.2fx\n", c.name,
                    static_cast<unsigned long long>(perInstr),
                    rate / 1e6, headroom);
    }
    std::printf("minimum headroom: %.2fx -> the host driver is %s a "
                "bottleneck (paper: 6.8x worst case)\n",
                headMin, headMin >= 1.0 ? "NOT" : "POTENTIALLY");

    const bool identical = steadyStateReport();

    overlapReport();

    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    // Non-zero exit when cached replay diverged from fresh
    // translation: the CI bench smoke step asserts bit-identity.
    return identical ? 0 : 1;
}
